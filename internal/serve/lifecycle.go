package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"time"

	"orca/internal/ampere"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

// maxBodyBytes bounds request bodies; queries and DXL documents are small,
// and an unbounded read is one more way for a storm to cost memory.
const maxBodyBytes = 4 << 20

// optimizeRequest is the body of POST /optimize.
type optimizeRequest struct {
	// SQL is the query text.
	SQL string `json:"sql"`
	// TimeoutMS shortens the per-request deadline below the server default
	// (it can never extend past it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// EmitDXL asks for the DXL plan message in the response alongside the
	// explain.
	EmitDXL bool `json:"emit_dxl,omitempty"`
}

// optimizeResponse is the success body of POST /optimize.
type optimizeResponse struct {
	Plan         string  `json:"plan,omitempty"`
	DXL          string  `json:"dxl,omitempty"`
	Cost         float64 `json:"cost"`
	Stage        string  `json:"stage"`
	Degraded     bool    `json:"degraded"`
	DegradedRung string  `json:"degraded_rung,omitempty"`
	Groups       int     `json:"groups"`
	GroupExprs   int     `json:"group_exprs"`
	RulesFired   int64   `json:"rules_fired"`
	DurationMS   int64   `json:"duration_ms"`
	MDRetries    int64   `json:"md_retries,omitempty"`
	BudgetFrac   float64 `json:"budget_frac"`
}

// bindFn produces the bound query for a request; the two endpoints differ
// only here (SQL text vs DXL query document).
type bindFn func(acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error)

// handleOptimizeJSON is POST /optimize: SQL text in JSON, plan out as JSON.
func (s *Server) handleOptimizeJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeAPIError(w, badRequestError(http.StatusMethodNotAllowed, "use POST"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeAPIError(w, badRequestError(http.StatusBadRequest, "reading body: "+err.Error()))
		return
	}
	var req optimizeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeAPIError(w, badRequestError(http.StatusBadRequest, "parsing JSON body: "+err.Error()))
		return
	}
	if req.SQL == "" {
		writeAPIError(w, badRequestError(http.StatusBadRequest, `missing "sql"`))
		return
	}
	bind := func(acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error) {
		return sql.Bind(req.SQL, acc, f)
	}
	s.runOptimize(w, r, s.requestDeadline(req.TimeoutMS), bind, req.EmitDXL, false)
}

// handleOptimizeDXL is POST /optimize/dxl: a raw DXL query document in, the
// raw DXL plan message out (errors still come back as the JSON taxonomy).
// This is the paper's interface — DXL is what makes the optimizer callable
// from outside any particular database system (§3).
func (s *Server) handleOptimizeDXL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeAPIError(w, badRequestError(http.StatusMethodNotAllowed, "use POST"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeAPIError(w, badRequestError(http.StatusBadRequest, "reading body: "+err.Error()))
		return
	}
	root, err := dxl.ParseXML(string(body))
	if err != nil {
		writeAPIError(w, badRequestError(http.StatusBadRequest, "parsing DXL: "+err.Error()))
		return
	}
	bind := func(acc *md.Accessor, f *md.ColumnFactory) (*core.Query, error) {
		return dxl.ParseQuery(root, acc, f)
	}
	s.runOptimize(w, r, s.requestDeadline(0), bind, true, true)
}

// requestDeadline resolves a client timeout hint against the server default:
// the client may shorten the deadline, never extend it.
func (s *Server) requestDeadline(timeoutMS int64) time.Duration {
	d := s.cfg.requestTimeout()
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; c < d {
			return c
		}
	}
	return d
}

// budgetFrac maps admission load to the budget-scaling fraction: full
// budgets below half load, then linear descent to the configured floor at
// full load. A busy server makes every request cheaper instead of letting
// the expensive ones monopolize it.
func budgetFrac(load, floor float64) float64 {
	if load <= 0.5 {
		return 1
	}
	if load >= 1 {
		return floor
	}
	return 1 - (load-0.5)/0.5*(1-floor)
}

// runOptimize is the hardened request lifecycle shared by both endpoints:
//
//	admit → deadline → derive budgets → bind → optimize (contained) → respond
//
// Every exit path goes through the error taxonomy; a panic anywhere in the
// bind/optimize phases produces a 500 with an AMPERe dump, not a dead
// process.
func (s *Server) runOptimize(w http.ResponseWriter, r *http.Request, timeout time.Duration, bind bindFn, emitDXL, rawDXL bool) {
	release, aerr := s.adm.admit(r.Context())
	if aerr != nil {
		writeAPIError(w, mapError(aerr, false))
		return
	}
	defer release()

	// Last-resort boundary for the serve glue outside optimizeContained
	// (fault injection before bind, plan serialization after): an admitted
	// request is always answered, never a dead connection.
	defer func() {
		if rec := recover(); rec != nil {
			ex := gpos.PanicException(gpos.CompServe, rec)
			s.vars.Panicked.Add(1)
			s.vars.Failed.Add(1)
			writeAPIError(w, panicError(ex))
		}
	}()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// serve/handler/slow armed as a delay simulates a stalled handler (the
	// request deadline and queue shedding must hold); armed as an error it
	// fails the request before any optimization work.
	if ferr := fault.Inject(fault.PointServeHandlerSlow); ferr != nil {
		s.vars.Failed.Add(1)
		writeAPIError(w, mapError(ferr, false))
		return
	}

	frac := budgetFrac(s.adm.load(), s.cfg.minBudgetFrac())
	cfg := s.cfg.Base.ScaleBudgets(frac)
	if s.cfg.DumpDir != "" {
		cfg.DumpCapture = s.dumpCapturer(ctx)
	}

	acc := md.NewAccessor(s.cache, s.cfg.Provider)
	f := md.NewColumnFactory()
	// The bind phase does metadata lookups too; give it the same deadline,
	// lookup timeout and retry policy the optimizer will use.
	acc.BindContext(ctx)
	acc.SetLookupTimeout(cfg.MDLookupTimeout)
	acc.SetRetryPolicy(cfg.MDRetry)

	q, res, cacheState, bindPhase, err := s.optimizeContained(ctx, cfg, acc, f, bind)
	s.vars.Retried.Add(acc.LookupRetries())
	if err != nil {
		s.vars.Failed.Add(1)
		if ex := gpos.AsException(err); ex != nil && ex.Code == gpos.CodePanic {
			writeAPIError(w, panicError(ex))
			return
		}
		writeAPIError(w, mapError(err, bindPhase))
		return
	}

	if cacheState != "" {
		w.Header().Set("X-Orca-Cache", cacheState)
	}
	if res.Degraded {
		s.vars.Degraded.Add(1)
		w.Header().Set("X-Orca-Degraded", res.DegradedRung)
	}
	s.vars.Completed.Add(1)

	if rawDXL {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		fmt.Fprintln(w, dxl.SerializePlan(res.Plan).Render())
		return
	}
	resp := optimizeResponse{
		Cost:         jsonCost(res.Cost),
		Stage:        res.Stage,
		Degraded:     res.Degraded,
		DegradedRung: res.DegradedRung,
		Groups:       res.Groups,
		GroupExprs:   res.GroupExprs,
		RulesFired:   res.RulesFired,
		DurationMS:   res.Duration.Milliseconds(),
		MDRetries:    acc.LookupRetries(),
		BudgetFrac:   frac,
	}
	resp.Plan = core.Explain(res.Plan, q.Factory)
	if emitDXL {
		resp.DXL = dxl.SerializePlan(res.Plan).Render()
	}
	writeJSON(w, http.StatusOK, resp)
}

// optimizeContained runs bind and optimize behind the per-request panic
// boundary. core.Optimize contains panics inside the optimization workflow
// already; this boundary additionally covers the bind phase and the serve
// glue, so nothing a single request does can take the process down.
// bindPhase reports whether a returned error came from binding (a client
// error) rather than optimization.
// cacheState is "hit"/"miss" when the plan cache is enabled (the value of
// the X-Orca-Cache response header), empty otherwise.
func (s *Server) optimizeContained(ctx context.Context, cfg core.Config, acc *md.Accessor, f *md.ColumnFactory, bind bindFn) (q *core.Query, res *core.Result, cacheState string, bindPhase bool, err error) {
	bindPhase = true
	defer func() {
		if rec := recover(); rec != nil {
			ex := gpos.PanicException(gpos.CompServe, rec)
			s.vars.Panicked.Add(1)
			if cfg.DumpCapture != nil && q != nil {
				cfg.DumpCapture(q, cfg, ex)
			}
			q, res, err = nil, nil, ex
		}
	}()
	q, err = bind(acc, f)
	if err != nil {
		return q, nil, "", true, err
	}
	bindPhase = false
	// serve/handler/panic sits after bind so a panic action exercises the
	// containment boundary with a query in hand for the AMPERe dump.
	if ferr := fault.Inject(fault.PointServeHandlerPanic); ferr != nil {
		return q, nil, "", false, ferr
	}
	res, cacheState, err = s.cachedOptimize(ctx, cfg, acc, q)
	return q, res, cacheState, false, err
}

// dumpCapturer builds the core.Config.DumpCapture hook writing AMPERe repro
// dumps into DumpDir. The capture context is detached from the request's
// cancellation: dumps are typically written precisely because the deadline
// expired, and the harvest must still run.
func (s *Server) dumpCapturer(ctx context.Context) func(*core.Query, core.Config, *gpos.Exception) string {
	dctx := context.WithoutCancel(ctx)
	return func(q *core.Query, cfg core.Config, failure *gpos.Exception) string {
		d, err := ampere.Capture(dctx, q, cfg, s.cfg.Provider, failure)
		if err != nil {
			return ""
		}
		path := filepath.Join(s.cfg.DumpDir, fmt.Sprintf("ampere-%d.dxl", time.Now().UnixNano()))
		if d.WriteFile(path) != nil {
			return ""
		}
		return path
	}
}

// jsonCost maps non-finite costs to -1: the degradation ladder's minimal
// rung reports InfCost ("no estimate"), and JSON has no infinity — without
// this the 200 response body would fail to encode after the status line.
func jsonCost(c float64) float64 {
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return -1
	}
	return c
}

// badRequestError is the taxon of requests rejected before the lifecycle
// starts (wrong method, unreadable or unparsable body).
func badRequestError(status int, msg string) *APIError {
	return &APIError{
		Status:    status,
		Component: string(gpos.CompServe),
		Code:      CodeBadRequest,
		Message:   msg,
	}
}
