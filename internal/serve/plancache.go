package serve

import (
	"context"

	"orca/internal/core"
	"orca/internal/md"
	"orca/internal/plancache"
	"orca/internal/props"
)

// Cache-state values reported in the X-Orca-Cache response header.
const (
	cacheHit  = "hit"
	cacheMiss = "miss"
)

// cachedOptimize wraps core.OptimizeContext with the parameterized plan
// cache (paper's "Query Optimization in the Wild" lineage: hot, repetitive
// traffic must not pay for search). The flow per request:
//
//	extract shape → probe cache → hit: rebind constants, skip the scheduler
//	                            → miss: singleflight the optimization, then
//	                              admit the parameterized plan
//
// state is "hit"/"miss" for the X-Orca-Cache header, or "" when the cache is
// disabled. A hit synthesizes a Result directly from the entry: Groups,
// GroupExprs, RulesFired and Duration stay zero, which is the honest
// accounting — no search happened.
func (s *Server) cachedOptimize(ctx context.Context, cfg core.Config, acc *md.Accessor, q *core.Query) (*core.Result, string, error) {
	if !s.plans.Enabled() {
		res, err := core.OptimizeContext(ctx, q, cfg)
		return res, "", err
	}
	shape, cacheable := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !cacheable {
		// Subqueries and other pointer-identity shapes cannot be
		// fingerprinted; they always pay for search.
		res, err := core.OptimizeContext(ctx, q, cfg)
		return res, cacheMiss, err
	}
	req, ok := s.plans.InternReq(props.Required{Dist: props.SingletonDist, Order: q.Order})
	if !ok {
		// The ReqID intern table is full: this required-property shape cannot
		// be keyed, so it pays for search (bounding the table is what keeps a
		// diverse ORDER BY stream from leaking memory past the byte budget).
		res, err := core.OptimizeContext(ctx, q, cfg)
		return res, cacheMiss, err
	}
	// The key stamps the metadata version observed after bind: a later bump
	// (DDL, stats refresh) changes the stamp and orphans this entry. Note the
	// stamp may already be newer than the one the bind phase started under;
	// admitPlan refuses such straddled plans (see MDVersionAtOpen).
	key := plancache.Key{
		FP:        shape.FP,
		Req:       req,
		Buckets:   shape.Buckets,
		MDVersion: acc.MDVersion(),
	}
	if e, ok := s.plans.Lookup(key, shape.Vector); ok {
		if res, ok := resultFromEntry(e, shape); ok {
			return res, cacheHit, nil
		}
	}
	// Miss: coalesce concurrent identical shapes so a storm of one hard
	// query optimizes once. The leader runs the real optimization and admits
	// the plan; waiters reuse its entry without touching the scheduler.
	var leaderRes *core.Result
	entry, err, leader := s.flight.Do(ctx, key, func() (*plancache.Entry, error) {
		r, oerr := core.OptimizeContext(ctx, q, cfg)
		if oerr != nil {
			return nil, oerr
		}
		leaderRes = r
		return s.admitPlan(key, shape, r, acc), nil
	})
	if leader {
		return leaderRes, cacheMiss, err
	}
	if err == nil && entry != nil {
		if res, ok := resultFromEntry(entry, shape); ok {
			// Served from the leader's flight: no search ran for this
			// request either, so the header says hit (the cache's own
			// hit/miss counters recorded the probe miss above).
			return res, cacheHit, nil
		}
	}
	// The leader failed (typed CodeLeaderFailed error or its own) or its
	// plan was uncacheable: fall back to an independent optimization rather
	// than failing this request for the leader's sins.
	res, err := core.OptimizeContext(ctx, q, cfg)
	return res, cacheMiss, err
}

// resultFromEntry rebinds the request's constants into a cached plan and
// synthesizes the optimization result a scheduler run would have produced.
func resultFromEntry(e *plancache.Entry, shape plancache.Shape) (*core.Result, bool) {
	plan, ok := plancache.Rebind(e.Plan, shape.Vector)
	if !ok {
		return nil, false
	}
	return &core.Result{Plan: plan, Cost: e.Cost, Stage: e.Stage}, true
}

// admitPlan parameterizes an optimization result and admits it, enforcing
// the never-cache rules documented in DESIGN.md §16: no degraded plans, no
// budget-aborted or timed-out stages (their plans reflect a truncated
// search, not the shape), and nothing when the metadata version moved
// anywhere between the accessor opening (before bind) and now — a bump
// mid-bind leaves a tree bound against old metadata, a bump mid-optimization
// a plan costed against it, and either would be served indefinitely under a
// stamp it does not deserve. Returns the admitted entry, or nil when the
// plan must not be cached — waiters then fall back to their own
// optimization.
func (s *Server) admitPlan(key plancache.Key, shape plancache.Shape, r *core.Result, acc *md.Accessor) *plancache.Entry {
	// The stamp is monotonic, so now == at-open proves the whole
	// bind→optimize window was bump-free (key.MDVersion was read in between,
	// so it matches too; the explicit check guards key construction drifting).
	if !admissible(r) || acc.MDVersion() != acc.MDVersionAtOpen() || acc.MDVersion() != key.MDVersion {
		return nil
	}
	plan, ok := plancache.Parameterize(r.Plan, shape.Vector)
	if !ok {
		return nil
	}
	e := &plancache.Entry{
		Plan:    plan,
		Cost:    r.Cost,
		Stage:   r.Stage,
		NParams: len(shape.Vector),
	}
	if !s.plans.Admit(key, e) {
		return nil
	}
	return e
}

// admissible reports whether a result represents a full, healthy
// optimization — the only kind worth serving to future requests.
func admissible(r *core.Result) bool {
	if r == nil || r.Plan == nil || r.Degraded || r.Failure != nil {
		return false
	}
	for _, sr := range r.StageRuns {
		if sr.TimedOut || sr.Aborted {
			return false
		}
	}
	return true
}
