package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/dxl"
	"orca/internal/fault"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/sql"
)

const demoSQL = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a"

// demoProvider is the paper's §4.1 two-table catalog.
func demoProvider() md.Provider {
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "t1", Rows: 100000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 50000, Lo: 0, Hi: 50000},
			{Name: "b", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "t2", Rows: 80000, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "a", Type: base.TInt, NDV: 80000, Lo: 0, Hi: 80000},
			{Name: "b", Type: base.TInt, NDV: 40000, Lo: 0, Hi: 50000},
		},
	})
	return p
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Base:     core.DefaultConfig(16),
		Provider: demoProvider(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// postJSON posts an optimizeRequest and decodes either the success body or
// the taxonomy error body.
func postJSON(t *testing.T, url string, req optimizeRequest) (int, http.Header, optimizeResponse, *APIError) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var out optimizeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("parsing success body %q: %v", data, err)
		}
		return resp.StatusCode, resp.Header, out, nil
	}
	return resp.StatusCode, resp.Header, optimizeResponse{}, parseTaxonomy(t, data)
}

// parseTaxonomy decodes a non-2xx body, failing the test if it is not a
// well-formed taxonomy error — the service must never emit an untyped error.
func parseTaxonomy(t *testing.T, data []byte) *APIError {
	t.Helper()
	var wrap struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(data, &wrap); err != nil || wrap.Error == nil ||
		wrap.Error.Component == "" || wrap.Error.Code == "" {
		t.Fatalf("non-2xx body is not a taxonomy error: %q", data)
	}
	return wrap.Error
}

func armFaults(t *testing.T, schedule string) {
	t.Helper()
	specs, err := fault.ParseSpecs(schedule)
	if err != nil {
		t.Fatalf("ParseSpecs(%q): %v", schedule, err)
	}
	disarm, err := fault.Arm(specs)
	if err != nil {
		t.Fatalf("Arm(%q): %v", schedule, err)
	}
	t.Cleanup(disarm)
}

func TestOptimizeRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, out, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL, EmitDXL: true})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if out.Plan == "" || !strings.Contains(out.Plan, "GatherMerge") {
		t.Errorf("plan explain missing GatherMerge root:\n%s", out.Plan)
	}
	if out.DXL == "" {
		t.Error("emit_dxl set but no DXL plan in response")
	}
	if out.Cost <= 0 || out.Degraded {
		t.Errorf("cost=%v degraded=%v, want positive cost, no degradation", out.Cost, out.Degraded)
	}
	snap := s.Vars().Snapshot()
	if snap["admitted"] != 1 || snap["completed"] != 1 || snap["in_flight"] != 0 {
		t.Errorf("varz after one request: %v", snap)
	}
}

func TestOptimizeDXLRoundTrip(t *testing.T) {
	// Build the DXL query document the way a client database would: bind the
	// SQL once out-of-band and serialize the bound query.
	p := demoProvider()
	acc := md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p)
	f := md.NewColumnFactory()
	q, err := sql.Bind(demoSQL, acc, f)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	doc := dxl.SerializeQuery(q).Render()

	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/optimize/dxl", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatalf("POST /optimize/dxl: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %q", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "Plan") {
		t.Errorf("response is not a DXL plan message: %q", data)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/optimize")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status %d, want 405", resp.StatusCode)
		}
		parseTaxonomy(t, data)
	})
	t.Run("invalid json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
		if apiErr := parseTaxonomy(t, data); apiErr.Code != CodeBadRequest {
			t.Errorf("code %q, want %q", apiErr.Code, CodeBadRequest)
		}
	})
	t.Run("missing sql", func(t *testing.T) {
		status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{})
		if status != http.StatusBadRequest || apiErr.Code != CodeBadRequest {
			t.Errorf("status %d code %q, want 400 %q", status, apiErr.Code, CodeBadRequest)
		}
	})
	t.Run("unknown table", func(t *testing.T) {
		status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: "SELECT a FROM nope"})
		if status != http.StatusNotFound {
			t.Errorf("status %d, want 404", status)
		}
		if apiErr.Component != string(gpos.CompMD) || apiErr.Code != "NotFound" {
			t.Errorf("taxon %s/%s, want md/NotFound", apiErr.Component, apiErr.Code)
		}
	})
	t.Run("invalid dxl", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/optimize/dxl", "application/xml", strings.NewReader("<not dxl"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
		parseTaxonomy(t, data)
	})
}

// TestShedQueueFull: with one slot and no queue, a second concurrent request
// is shed immediately with 429, Retry-After, and the AdmissionShed taxon.
func TestShedQueueFull(t *testing.T) {
	armFaults(t, "serve/handler/slow:delay=400ms:limit=1")
	s := newTestServer(t, func(c *Config) {
		c.Admission = AdmissionConfig{MaxInFlight: 1, MaxQueue: 0}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		status, _, _, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
		first <- status
	}()
	waitFor(t, "first request in flight", func() bool { return s.Vars().InFlight.Load() == 1 })

	status, hdr, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", status)
	}
	if apiErr.Code != CodeShed || !apiErr.Retryable || apiErr.RetryAfterMS <= 0 {
		t.Errorf("shed taxon = %+v", apiErr)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := <-first; got != http.StatusOK {
		t.Errorf("first request: status %d, want 200", got)
	}
	if shed := s.Vars().Shed.Load(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
}

// TestDeadlineExceeded: a request whose deadline expires mid-lookup gets the
// 504 DeadlineExceeded taxon, marked retryable.
func TestDeadlineExceeded(t *testing.T) {
	armFaults(t, "md/provider/fetch:delay=300ms")
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL, TimeoutMS: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (taxon %+v), want 504", status, apiErr)
	}
	if apiErr.Code != CodeDeadline || !apiErr.Retryable {
		t.Errorf("deadline taxon = %+v", apiErr)
	}
	if failed := s.Vars().Failed.Load(); failed != 1 {
		t.Errorf("failed counter = %d, want 1", failed)
	}
}

// TestDegradedPlan: an injected optimizer failure engages the degradation
// ladder; the response is still 200, flagged degraded in body, header and
// varz — the paper's "fail the query gracefully, never the process" served
// over HTTP.
func TestDegradedPlan(t *testing.T) {
	armFaults(t, "core/normalize:error:limit=1")
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, hdr, out, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (degraded)", status)
	}
	if !out.Degraded || out.DegradedRung == "" {
		t.Fatalf("response not marked degraded: %+v", out)
	}
	if hdr.Get("X-Orca-Degraded") != out.DegradedRung {
		t.Errorf("X-Orca-Degraded = %q, want %q", hdr.Get("X-Orca-Degraded"), out.DegradedRung)
	}
	if out.Plan == "" {
		t.Error("degraded response without a plan")
	}
	if s.Vars().Degraded.Load() != 1 {
		t.Errorf("degraded counter = %d, want 1", s.Vars().Degraded.Load())
	}
}

// TestPanicContained: an injected handler panic produces a 500 with the
// Panic taxon, and the server keeps serving.
func TestPanicContained(t *testing.T) {
	armFaults(t, "serve/handler/panic:panic:limit=1")
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", status)
	}
	if apiErr.Code != gpos.CodePanic {
		t.Errorf("taxon code %q, want %q", apiErr.Code, gpos.CodePanic)
	}
	if s.Vars().Panicked.Load() != 1 {
		t.Errorf("panicked counter = %d, want 1", s.Vars().Panicked.Load())
	}
	// The process survived; the next request must succeed normally.
	status, _, out, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusOK || out.Degraded {
		t.Errorf("post-panic request: status %d degraded %v, want clean 200", status, out.Degraded)
	}
}

// TestMDRetryAbsorbed: with a retry policy in the base config, injected
// transient metadata failures are retried away; the request succeeds and the
// retries show up in varz.
func TestMDRetryAbsorbed(t *testing.T) {
	armFaults(t, "serve/md/transient-error:error:every=2:limit=3")
	s := newTestServer(t, func(c *Config) {
		c.Base.MDRetry = md.RetryPolicy{MaxAttempts: 4, InitialBackoff: time.Millisecond}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, out, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusOK {
		t.Fatalf("status %d (taxon %+v), want 200", status, apiErr)
	}
	if out.MDRetries == 0 || s.Vars().Retried.Load() == 0 {
		t.Errorf("retries: body=%d varz=%d, want > 0", out.MDRetries, s.Vars().Retried.Load())
	}
}

// TestShutdownDrains: Shutdown stops admission (503 draining, /readyz 503)
// while the in-flight request runs to completion; Shutdown returns only
// once nothing is in flight.
func TestShutdownDrains(t *testing.T) {
	armFaults(t, "serve/handler/slow:delay=300ms:limit=1")
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		status, _, _, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
		first <- status
	}()
	waitFor(t, "first request in flight", func() bool { return s.Vars().InFlight.Load() == 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, "server draining", s.Draining)

	// New work is refused with the draining taxon...
	status, _, _, apiErr := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
	if status != http.StatusServiceUnavailable || apiErr.Code != CodeShed {
		t.Errorf("request during drain: status %d taxon %+v, want 503 %s", status, apiErr, CodeShed)
	}
	// ...and readiness reports the drain.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", resp.StatusCode)
	}

	// The in-flight request still completes, and only then Shutdown returns.
	if got := <-first; got != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", got)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if s.Vars().InFlight.Load() != 0 {
		t.Errorf("in-flight after drain = %d", s.Vars().InFlight.Load())
	}

	// Liveness stays green through and after the drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after drain: %d, want 200", resp.StatusCode)
	}
}

func TestBudgetFrac(t *testing.T) {
	cases := []struct {
		load, floor, want float64
	}{
		{0, 0.25, 1},
		{0.5, 0.25, 1},
		{0.75, 0.25, 0.625},
		{1, 0.25, 0.25},
		{2, 0.25, 0.25},
		{0.9, 1, 1}, // floor 1 disables scaling
	}
	for _, c := range cases {
		if got := budgetFrac(c.load, c.floor); !approxEqual(got, c.want) {
			t.Errorf("budgetFrac(%v, %v) = %v, want %v", c.load, c.floor, got, c.want)
		}
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestConfigRejected: serve.New refuses nonsense configurations.
func TestConfigRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a config without a Provider")
	}
	bad := Config{Provider: demoProvider(), Base: core.Config{MemoryBudget: -1}}
	if _, err := New(bad); err == nil {
		t.Error("New accepted a base config with a negative memory budget")
	}
	bad = Config{Provider: demoProvider(), Admission: AdmissionConfig{MaxInFlight: -1}}
	if _, err := New(bad); err == nil {
		t.Error("New accepted a negative admission size")
	}
}

// waitFor polls cond (a cheap atomic read) until it holds or the deadline
// expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStormShedsBounded is the acceptance scenario in miniature: a burst at
// 4x admission capacity, every response either a plan or a typed taxonomy
// error, with at least one shed and the process intact.
func TestStormShedsBounded(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Admission = AdmissionConfig{MaxInFlight: 2, MaxQueue: 2, QueueTimeout: 200 * time.Millisecond}
		c.RequestTimeout = 5 * time.Second
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16 // 4x the total admission capacity of 4
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, _, _ := postJSON(t, ts.URL, optimizeRequest{SQL: demoSQL})
			statuses[i] = status
		}(i)
	}
	wg.Wait()

	var ok, shed, other int
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			other++
		}
	}
	t.Logf("storm: %d ok, %d shed, %d other", ok, shed, other)
	if ok == 0 {
		t.Error("storm: no request succeeded")
	}
	if other > 0 {
		t.Errorf("storm: %d responses outside {200, 429}: %v", other, statuses)
	}
	snap := s.Vars().Snapshot()
	if snap["admitted"]+snap["shed"] != int64(n) {
		t.Errorf("admitted(%d) + shed(%d) != %d requests", snap["admitted"], snap["shed"], n)
	}
	if snap["in_flight"] != 0 || snap["queued"] != 0 {
		t.Errorf("gauges nonzero after storm: %v", snap)
	}
}

// TestAdmitPanicLabeled: a panic contained inside the admission controller
// is shed with the distinct "panic" reason and counted in admission_panics —
// never mislabeled as scheduled fault injection, which would hide a real
// admission bug behind the chaos schedule.
func TestAdmitPanicLabeled(t *testing.T) {
	armFaults(t, fault.PointServeAdmit+":panic:limit=1")
	vars := &Counters{}
	a := newAdmission(AdmissionConfig{MaxInFlight: 1}, make(chan struct{}), vars)

	release, err := a.admit(context.Background())
	if release != nil || err == nil {
		t.Fatal("panicking admit returned a slot")
	}
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("admit error %T, want *ShedError", err)
	}
	if shed.Reason != ShedPanic {
		t.Errorf("shed reason = %q, want %q", shed.Reason, ShedPanic)
	}
	if got := vars.AdmitPanics.Load(); got != 1 {
		t.Errorf("admission_panics = %d, want 1", got)
	}
	if got := vars.Shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	// The limit=1 schedule is spent: the controller works again.
	release, err = a.admit(context.Background())
	if err != nil {
		t.Fatalf("post-panic admit failed: %v", err)
	}
	release()

	// An injected (non-panic) rejection keeps its own distinct reason.
	armFaults(t, fault.PointServeAdmit+":error:limit=1")
	if _, err := a.admit(context.Background()); err == nil {
		t.Fatal("injected rejection did not shed")
	} else if shed, ok := err.(*ShedError); !ok || shed.Reason != ShedInjected {
		t.Errorf("injected shed reason = %v, want %q", err, ShedInjected)
	}
	if got := vars.AdmitPanics.Load(); got != 1 {
		t.Errorf("admission_panics moved on an injected error: %d", got)
	}
}
