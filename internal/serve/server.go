// Package serve is the optimizer-as-a-service front end (cmd/orcad): a
// long-running HTTP server that accepts queries as JSON (SQL text) or raw
// DXL query documents, runs core.Optimize with the degradation ladder as its
// error boundary, and returns plans. The paper's premise — DXL makes Orca a
// standalone component (§3) — makes the optimizer a network service; this
// package makes it an overload-resilient one:
//
//   - admission control: a bounded concurrency semaphore plus a bounded wait
//     queue with deadline shedding, so a storm of requests costs a bounded
//     amount of optimization work and everyone else gets a fast 429 with
//     Retry-After;
//   - per-request deadlines and budgets: every request runs under a context
//     deadline and a core.Config derived from the server-wide baseline,
//     with search budgets scaled down as load rises so hard queries degrade
//     earlier instead of monopolizing the process;
//   - retry with backoff: transient metadata-provider failures are absorbed
//     by md.RetryPolicy (exponential backoff with jitter, budgeted by the
//     request deadline);
//   - per-request panic containment: a panicking request produces a 500
//     with a structured taxonomy body and an AMPERe dump, never a dead
//     process;
//   - graceful drain: shutdown stops admitting, lets in-flight requests
//     finish under a timeout, and reports the transition via /readyz.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/plancache"
)

// Config assembles a Server.
type Config struct {
	// Base is the server-wide baseline optimizer configuration; every
	// request derives its own core.Config from it (budgets scaled by load).
	// It is validated by New.
	Base core.Config
	// Admission sizes the admission controller.
	Admission AdmissionConfig
	// RequestTimeout is the default (and maximum) per-request deadline.
	// A client may request a shorter one via timeout_ms; longer requests
	// are clamped. Defaults to 10s.
	RequestTimeout time.Duration
	// MinBudgetFrac is the floor of load-based budget scaling: at full
	// admission load a request runs with this fraction of the baseline
	// budgets. Defaults to 0.25; 1 disables scaling.
	MinBudgetFrac float64
	// DumpDir, when set, receives AMPERe dumps for degraded and panicked
	// requests.
	DumpDir string

	// PlanCacheBytes bounds the parameterized plan cache's memory; 0 picks
	// DefaultPlanCacheBytes. See internal/plancache.
	PlanCacheBytes int64
	// PlanCacheOff disables the plan cache: every request pays for a full
	// optimization and no X-Orca-Cache header is emitted.
	PlanCacheOff bool

	// Provider is the metadata backend shared by all requests.
	Provider md.Provider
	// Cache is the shared metadata cache; New creates one when nil.
	Cache *md.Cache
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 10 * time.Second
	}
	return c.RequestTimeout
}

// DefaultPlanCacheBytes is the plan cache's byte budget when the host does
// not set one: big enough for thousands of parameterized plans, small next
// to the Memo budgets of the optimizations it avoids.
const DefaultPlanCacheBytes = 64 << 20

func (c Config) planCacheBytes() int64 {
	if c.PlanCacheOff {
		return 0
	}
	if c.PlanCacheBytes <= 0 {
		return DefaultPlanCacheBytes
	}
	return c.PlanCacheBytes
}

func (c Config) minBudgetFrac() float64 {
	if c.MinBudgetFrac <= 0 || c.MinBudgetFrac > 1 {
		return 0.25
	}
	return c.MinBudgetFrac
}

// Server is one optimizer service instance. Create with New, expose with
// Serve/ListenAndServe (or Handler for in-process tests), stop with
// Shutdown.
type Server struct {
	cfg    Config
	cache  *md.Cache
	plans  *plancache.Cache
	flight *plancache.FlightGroup
	vars   *Counters
	adm    *admission
	mux    *http.ServeMux

	draining  chan struct{}
	drainOnce sync.Once

	mu        sync.Mutex
	httpSrv   *http.Server
	boundAddr string
}

// New validates the configuration and assembles a server.
func New(cfg Config) (*Server, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("serve: config: Provider is required")
	}
	if err := cfg.Base.Validate(); err != nil {
		return nil, fmt.Errorf("serve: base config: %w", err)
	}
	if cfg.Admission.MaxInFlight < 0 || cfg.Admission.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: config: admission sizes (%d in-flight, %d queued) must be >= 0",
			cfg.Admission.MaxInFlight, cfg.Admission.MaxQueue)
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("serve: config: RequestTimeout = %v; want >= 0", cfg.RequestTimeout)
	}
	cache := cfg.Cache
	if cache == nil {
		cache = md.NewCache(&gpos.MemoryAccountant{})
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		plans:    plancache.New(cfg.planCacheBytes()),
		flight:   plancache.NewFlightGroup(),
		vars:     &Counters{},
		draining: make(chan struct{}),
		mux:      http.NewServeMux(),
	}
	s.adm = newAdmission(cfg.Admission, s.draining, s.vars)
	s.mux.HandleFunc("/optimize", s.handleOptimizeJSON)
	s.mux.HandleFunc("/optimize/dxl", s.handleOptimizeDXL)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/varz", s.handleVarz)
	return s, nil
}

// Handler exposes the server's routes for in-process use (httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Vars exposes the server's counters for tests and the benchmark harness.
func (s *Server) Vars() *Counters { return s.vars }

// PlanCache exposes the parameterized plan cache for tests and tooling.
func (s *Server) PlanCache() *plancache.Cache { return s.plans }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// BoundAddr returns the listener address after ListenAndServe binds, for
// hosts that bind port 0 and need the chosen port.
func (s *Server) BoundAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundAddr
}

// Serve accepts connections on l until Shutdown. A Shutdown-initiated stop
// returns nil.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.boundAddr = l.Addr().String()
	s.mu.Unlock()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe binds addr (host:0 picks an ephemeral port, readable via
// BoundAddr) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: admission stops accepting (new
// requests shed with 503), /readyz flips to 503 so load balancers rotate
// the instance out, and in-flight requests run to completion under ctx's
// deadline. It returns nil once every admitted request has finished, or
// ctx's error if the drain budget expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
	}
	// In handler-only deployments (tests, embedded use) — and as a belt over
	// http.Server.Shutdown's connection-level accounting — wait until no
	// request holds a slot.
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.vars.InFlight.Load() == 0 && s.vars.Queued.Load() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain incomplete: %d in flight, %d queued: %w",
				s.vars.InFlight.Load(), s.vars.Queued.Load(), ctx.Err())
		}
	}
}

// handleHealthz is liveness: 200 as long as the process can answer at all,
// draining included.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while admitting, 503 once draining so load
// balancers stop routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleVarz exposes the counters as flat JSON, plan-cache counters merged
// in under the plan_cache_ prefix.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	vars := s.vars.Snapshot()
	st := s.plans.Stats()
	vars["plan_cache_hits"] = st.Hits
	vars["plan_cache_misses"] = st.Misses
	vars["plan_cache_evictions"] = st.Evictions
	vars["plan_cache_bytes"] = st.Bytes
	vars["plan_cache_entries"] = st.Entries
	writeJSON(w, http.StatusOK, vars)
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode error here can only be
	// a dead client, which has no recourse.
	_ = enc.Encode(v)
}

// writeAPIError writes the taxonomy body with its status and Retry-After.
func writeAPIError(w http.ResponseWriter, apiErr *APIError) {
	if apiErr.RetryAfterMS > 0 {
		secs := (apiErr.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, apiErr.Status, map[string]*APIError{"error": apiErr})
}
