package serve

import (
	"context"
	"fmt"
	"time"

	"orca/internal/fault"
)

// AdmissionConfig sizes the admission controller: a bounded concurrency
// semaphore fronted by a bounded wait queue. Requests beyond MaxInFlight
// wait; requests beyond MaxInFlight+MaxQueue — or whose wait exceeds
// QueueTimeout — are shed with 429 and a Retry-After hint. Shedding early
// and cheaply is the point: under a storm the server does a bounded amount
// of optimization work and answers everyone else immediately, instead of
// accepting unbounded work and toppling.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests optimizing concurrently.
	// Defaults to 4.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a slot.
	// Zero means no queue: anything beyond MaxInFlight sheds immediately.
	MaxQueue int
	// QueueTimeout bounds the wait in the queue; a request still queued
	// when it fires is shed. Defaults to 1s.
	QueueTimeout time.Duration
}

func (c AdmissionConfig) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 4
	}
	return c.MaxInFlight
}

func (c AdmissionConfig) queueTimeout() time.Duration {
	if c.QueueTimeout <= 0 {
		return time.Second
	}
	return c.QueueTimeout
}

// Shed reasons reported in ShedError.Reason and the taxonomy bodies.
const (
	// ShedQueueFull: the wait queue is at capacity.
	ShedQueueFull = "queue-full"
	// ShedQueueTimeout: the request waited QueueTimeout without a slot.
	ShedQueueTimeout = "queue-timeout"
	// ShedDraining: the server is shutting down and admits nothing new.
	ShedDraining = "draining"
	// ShedClientGone: the client's context ended while queued.
	ShedClientGone = "client-gone"
	// ShedInjected: the serve/admission/reject fault point fired.
	ShedInjected = "injected"
	// ShedPanic: the admission controller itself panicked and contained it —
	// a fault point armed with the panic action, or a real bug in admission
	// accounting. Kept distinct from ShedInjected so /varz and clients never
	// read a genuine failure as scheduled fault injection.
	ShedPanic = "panic"
)

// ShedError reports a request rejected by admission control. It carries the
// machine-readable reason and the Retry-After hint for the 429/503 response.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: request shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// admission is the runtime state of the controller: a semaphore channel for
// slots, gauges shared with /varz, and the server's drain signal.
type admission struct {
	cfg      AdmissionConfig
	slots    chan struct{}
	draining chan struct{}
	vars     *Counters
}

func newAdmission(cfg AdmissionConfig, draining chan struct{}, vars *Counters) *admission {
	return &admission{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.maxInFlight()),
		draining: draining,
		vars:     vars,
	}
}

// retryAfter estimates when a shed client should come back: one queue
// timeout, rounded up to a whole second (the Retry-After header granularity).
func (a *admission) retryAfter() time.Duration {
	d := a.cfg.queueTimeout()
	if d < time.Second {
		return time.Second
	}
	return d.Round(time.Second)
}

// admit acquires a concurrency slot, waiting in the bounded queue under the
// queue deadline, the request context, and the drain signal. On success it
// returns the release function the caller must run exactly once when the
// request finishes. On failure it returns a *ShedError naming why.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	// The admission controller contains its own failures: a panic here —
	// fault-injected or real — sheds the request with a taxonomy answer
	// instead of killing the connection. No slot is held at any panic site
	// in this function, so there is nothing to release. The reason is
	// ShedPanic, not ShedInjected: only the non-panicking fault path below is
	// provably injected, and mislabeling a real accounting bug as scheduled
	// chaos would hide it. AdmitPanics makes the distinction visible in /varz.
	defer func() {
		if rec := recover(); rec != nil {
			a.vars.AdmitPanics.Add(1)
			a.vars.Shed.Add(1)
			release, err = nil, &ShedError{Reason: ShedPanic, RetryAfter: a.retryAfter()}
		}
	}()
	if ierr := fault.Inject(fault.PointServeAdmit); ierr != nil {
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedInjected, RetryAfter: a.retryAfter()}
	}
	select {
	case <-a.draining:
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedDraining, RetryAfter: a.retryAfter()}
	default:
	}

	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		return a.acquired(), nil
	default:
	}

	// Slow path: join the bounded wait queue. The gauge doubles as the
	// queue-capacity check — Add first, shed if we pushed it past the cap.
	if a.vars.Queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.vars.Queued.Add(-1)
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedQueueFull, RetryAfter: a.retryAfter()}
	}
	defer a.vars.Queued.Add(-1)

	timer := time.NewTimer(a.cfg.queueTimeout())
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.acquired(), nil
	case <-timer.C:
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedQueueTimeout, RetryAfter: a.retryAfter()}
	case <-ctx.Done():
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedClientGone, RetryAfter: a.retryAfter()}
	case <-a.draining:
		a.vars.Shed.Add(1)
		return nil, &ShedError{Reason: ShedDraining, RetryAfter: a.retryAfter()}
	}
}

// acquired finalizes a successful slot acquisition and builds its release.
func (a *admission) acquired() func() {
	a.vars.Admitted.Add(1)
	a.vars.InFlight.Add(1)
	return func() {
		a.vars.InFlight.Add(-1)
		<-a.slots
	}
}

// load reports the controller's current utilization in [0, 1]: in-flight
// plus queued over total capacity. The budget policy scales per-request
// search budgets down as this approaches 1.
func (a *admission) load() float64 {
	capacity := a.cfg.maxInFlight() + a.cfg.MaxQueue
	if capacity <= 0 {
		return 0
	}
	busy := a.vars.InFlight.Load() + a.vars.Queued.Load()
	l := float64(busy) / float64(capacity)
	if l > 1 {
		return 1
	}
	return l
}
