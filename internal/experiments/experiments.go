// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate: Figure 12 (Orca vs the legacy
// Planner over TPC-DS), the §7.2.2 optimization-time/memory measurements,
// Figures 13 and 14 (HAWQ vs the Impala and Stinger simulations), Figure 15
// (TPC-DS support counts) and the §6.2 TAQO cost-model accuracy measurement.
// The same entry points back cmd/benchmarks and the root bench_test.go.
package experiments

import (
	"fmt"
	"math"
	"time"

	"orca/internal/core"
	"orca/internal/datagen"
	"orca/internal/engine"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/planner"
	"orca/internal/rival"
	"orca/internal/sql"
	"orca/internal/taqo"
	"orca/internal/tpcds"
)

// Config sizes the simulated testbed. The defaults mirror the paper's
// proportions at laptop scale: 16 segments for the MPP comparison (§7.2.1's
// 16-node cluster), 8 for the Hadoop comparison (§7.3.1's 8 worker nodes).
type Config struct {
	Segments int
	Scale    int
	Seed     uint64
	// Budget is the per-query execution cap in work units — the stand-in
	// for the paper's 10000 s timeout. Plans that blow it report the budget
	// as their cost, capping speed-ups exactly like the paper's 1000x bars.
	Budget int64
}

// DefaultConfig returns the standard experiment testbed.
func DefaultConfig() Config {
	return Config{Segments: 16, Scale: 2, Seed: 20140622, Budget: 8_000_000}
}

// Env is a loaded testbed: catalog, generated data, shared metadata cache.
type Env struct {
	Cfg      Config
	Provider *md.MemProvider
	Cluster  *engine.Cluster
	Cache    *md.Cache
	Mem      *gpos.MemoryAccountant
}

// NewEnv builds the catalog and loads generated data.
func NewEnv(cfg Config) (*Env, error) {
	mem := &gpos.MemoryAccountant{}
	p := md.NewMemProvider()
	tpcds.BuildCatalog(p, tpcds.Scale{Factor: cfg.Scale})
	cluster := engine.NewCluster(cfg.Segments, p)
	if err := datagen.LoadAll(cluster, p, cfg.Seed); err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, Provider: p, Cluster: cluster, Cache: md.NewCache(mem), Mem: mem}, nil
}

// bind parses and binds one workload query.
func (e *Env) bind(sqlText string) (*core.Query, error) {
	return sql.Bind(sqlText, md.NewAccessor(e.Cache, e.Provider), md.NewColumnFactory())
}

// OptimizeOrca runs Orca on a workload query.
func (e *Env) OptimizeOrca(sqlText string) (*core.Result, *core.Query, error) {
	q, err := e.bind(sqlText)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Optimize(q, core.DefaultConfig(e.Cfg.Segments))
	if err != nil {
		return nil, nil, err
	}
	return res, q, nil
}

// run executes a plan under the experiment budget and returns its work.
func (e *Env) run(plan interface{}, opts engine.Options) (int64, bool, error) {
	p := plan.(*core.Result)
	out, err := e.Cluster.Execute(p.Plan, opts)
	if err != nil {
		return 0, false, err
	}
	return out.Stats.Work(3), out.TimedOut, nil
}

// ---------------------------------------------------------------------------
// Figure 12: Orca vs Planner speed-up per query

// Fig12Row is one bar of Figure 12.
type Fig12Row struct {
	Query           string
	OrcaWork        int64
	PlannerWork     int64
	Speedup         float64
	PlannerTimedOut bool
	OrcaOptTime     time.Duration
}

// Figure12 plans and executes the workload with both optimizers.
func (e *Env) Figure12() ([]Fig12Row, error) {
	opts := engine.Options{Budget: e.Cfg.Budget}
	var rows []Fig12Row
	for _, wq := range tpcds.Workload() {
		res, _, err := e.OptimizeOrca(wq.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: orca: %w", wq.Name, err)
		}
		orcaOut, err := e.Cluster.Execute(res.Plan, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: orca exec: %w", wq.Name, err)
		}
		orcaWork := orcaOut.Stats.Work(3)
		if orcaOut.TimedOut {
			orcaWork = e.Cfg.Budget
		}

		q2, err := e.bind(wq.SQL)
		if err != nil {
			return nil, err
		}
		pl := planner.New(e.Cfg.Segments, q2.Accessor, q2.Factory)
		plan, err := pl.Optimize(q2)
		if err != nil {
			return nil, fmt.Errorf("%s: planner: %w", wq.Name, err)
		}
		legacyOut, err := e.Cluster.Execute(plan, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: planner exec: %w", wq.Name, err)
		}
		plannerWork := legacyOut.Stats.Work(3)
		if legacyOut.TimedOut {
			plannerWork = e.Cfg.Budget
		}

		rows = append(rows, Fig12Row{
			Query:           wq.Name,
			OrcaWork:        orcaWork,
			PlannerWork:     plannerWork,
			Speedup:         float64(plannerWork) / float64(max64(orcaWork, 1)),
			PlannerTimedOut: legacyOut.TimedOut,
			OrcaOptTime:     res.Duration,
		})
	}
	return rows, nil
}

// Fig12Summary aggregates Figure 12 the way the paper reports it.
type Fig12Summary struct {
	Queries          int
	SuiteSpeedup     float64 // total planner work / total orca work
	SameOrBetterFrac float64 // fraction with speed-up ≥ ~1 (paper: 80%)
	TimeoutCapped    int     // queries where the planner hit the cap
	MaxSpeedup       float64
	WorstSlowdown    float64 // smallest speed-up
	GeoMeanSpeedup   float64
}

// Summarize computes the headline numbers.
func Summarize(rows []Fig12Row) Fig12Summary {
	s := Fig12Summary{Queries: len(rows), WorstSlowdown: 1e18}
	var orcaTotal, plannerTotal int64
	sameOrBetter := 0
	logSum := 0.0
	for _, r := range rows {
		orcaTotal += r.OrcaWork
		plannerTotal += r.PlannerWork
		if r.Speedup >= 0.95 {
			sameOrBetter++
		}
		if r.PlannerTimedOut {
			s.TimeoutCapped++
		}
		if r.Speedup > s.MaxSpeedup {
			s.MaxSpeedup = r.Speedup
		}
		if r.Speedup < s.WorstSlowdown {
			s.WorstSlowdown = r.Speedup
		}
		logSum += logf(r.Speedup)
	}
	if len(rows) > 0 {
		s.SuiteSpeedup = float64(plannerTotal) / float64(max64(orcaTotal, 1))
		s.SameOrBetterFrac = float64(sameOrBetter) / float64(len(rows))
		s.GeoMeanSpeedup = expf(logSum / float64(len(rows)))
	}
	return s
}

// ---------------------------------------------------------------------------
// §7.2.2: optimization time and memory footprint

// OptStatsRow reports per-query optimizer effort.
type OptStatsRow struct {
	Query      string
	OptTime    time.Duration
	Groups     int
	GroupExprs int
	RulesFired int64
	PeakMem    int64
}

// OptimizationStats measures Orca itself across the workload.
func (e *Env) OptimizationStats() ([]OptStatsRow, error) {
	var out []OptStatsRow
	for _, wq := range tpcds.Workload() {
		res, _, err := e.OptimizeOrca(wq.SQL)
		if err != nil {
			return nil, err
		}
		out = append(out, OptStatsRow{
			Query:      wq.Name,
			OptTime:    res.Duration,
			Groups:     res.Groups,
			GroupExprs: res.GroupExprs,
			RulesFired: res.RulesFired,
			PeakMem:    res.PeakMemBytes,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 13/14: HAWQ vs rival engines

// RivalRow is one bar of Figure 13 or 14.
type RivalRow struct {
	Query         string
	HAWQWork      int64
	RivalWork     int64
	Speedup       float64
	RivalOOM      bool
	RivalTimedOut bool
}

// FigureRival compares Orca(HAWQ) with a rival profile on the subset of the
// workload the rival can optimize.
func (e *Env) FigureRival(p *rival.Profile) ([]RivalRow, error) {
	features := templateFeatures()
	opts := engine.Options{Budget: e.Cfg.Budget}
	var rows []RivalRow
	for _, wq := range tpcds.Workload() {
		if !p.CanOptimize(features[wq.TemplateID] &^ tpcds.FImplicitCross) {
			// The paper rewrote implicit cross joins away; other feature
			// gaps exclude the query from the comparison entirely.
			continue
		}
		res, _, err := e.OptimizeOrca(wq.SQL)
		if err != nil {
			return nil, err
		}
		hawqOut, err := e.Cluster.Execute(res.Plan, opts)
		if err != nil {
			return nil, err
		}
		hawqWork := hawqOut.Stats.Work(3)

		q2, err := e.bind(wq.SQL)
		if err != nil {
			return nil, err
		}
		plan, err := p.Plan(q2, e.Cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("%s: %s plan: %w", wq.Name, p.Name, err)
		}
		rivalOut, err := e.Cluster.Execute(plan, p.ExecOptions(e.Cfg.Budget))
		row := RivalRow{Query: wq.Name, HAWQWork: hawqWork}
		switch {
		case err == engine.ErrOOM:
			row.RivalOOM = true
			row.RivalWork = e.Cfg.Budget
		case err != nil:
			return nil, fmt.Errorf("%s: %s exec: %w", wq.Name, p.Name, err)
		case rivalOut.TimedOut:
			row.RivalTimedOut = true
			row.RivalWork = e.Cfg.Budget
		default:
			row.RivalWork = rivalOut.Stats.Work(3)
		}
		row.Speedup = float64(row.RivalWork) / float64(max64(hawqWork, 1))
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 15: TPC-DS support counts

// SupportRow is one system's bar pair in Figure 15.
type SupportRow struct {
	System   string
	Optimize int
	Execute  int
}

// Figure15 computes optimization and execution support counts over the
// 111-query expansion of the 99 templates. Optimization support intersects
// each template's feature tags with the profile's gates; execution support
// additionally applies the profile's memory model, measured on the
// executable workload subset and extrapolated to the rest (see
// EXPERIMENTS.md for the methodology note).
func (e *Env) Figure15() ([]SupportRow, error) {
	profiles := []*rival.Profile{rival.HAWQ(), rival.Impala(), rival.Presto(), rival.Stinger()}
	var out []SupportRow
	for _, p := range profiles {
		optimize := 0
		for _, tpl := range tpcds.Templates() {
			if p.CanOptimize(tpl.Features &^ tpcds.FImplicitCross) {
				optimize += tpl.Instances
			}
		}
		execute := optimize
		if p.MemLimitRows > 0 || p.PipelineMemRows > 0 {
			frac, err := e.execSuccessFraction(p)
			if err != nil {
				return nil, err
			}
			execute = int(float64(optimize)*frac + 0.5)
		}
		out = append(out, SupportRow{System: p.Name, Optimize: optimize, Execute: execute})
	}
	return out, nil
}

// execSuccessFraction measures, on the executable workload queries the
// profile can optimize, the fraction that complete under its memory model.
func (e *Env) execSuccessFraction(p *rival.Profile) (float64, error) {
	features := templateFeatures()
	total, ok := 0, 0
	for _, wq := range tpcds.Workload() {
		if !p.CanOptimize(features[wq.TemplateID] &^ tpcds.FImplicitCross) {
			continue
		}
		total++
		q, err := e.bind(wq.SQL)
		if err != nil {
			return 0, err
		}
		plan, err := p.Plan(q, e.Cfg.Segments)
		if err != nil {
			continue // planning failure counts as unexecuted
		}
		out, err := e.Cluster.Execute(plan, p.ExecOptions(e.Cfg.Budget))
		if err == engine.ErrOOM {
			continue
		}
		if err != nil {
			return 0, err
		}
		if !out.TimedOut {
			ok++
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(ok) / float64(total), nil
}

// ---------------------------------------------------------------------------
// TAQO (§6.2)

// TaqoRow reports cost-model accuracy for one query.
type TaqoRow struct {
	Query       string
	Correlation float64
	Sampled     int
	SpaceSize   float64
}

// TAQO scores the cost model on a subset of the workload.
func (e *Env) TAQO(queryNames []string, samples int) ([]TaqoRow, error) {
	want := map[string]bool{}
	for _, n := range queryNames {
		want[n] = true
	}
	var out []TaqoRow
	for _, wq := range tpcds.Workload() {
		if len(want) > 0 && !want[wq.Name] {
			continue
		}
		res, _, err := e.OptimizeOrca(wq.SQL)
		if err != nil {
			return nil, err
		}
		score, err := taqo.Evaluate(res.Memo, res.RootGroup, res.RootReq, e.Cluster, taqo.Options{
			Samples: samples,
			Budget:  e.Cfg.Budget,
			Seed:    e.Cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: taqo: %w", wq.Name, err)
		}
		out = append(out, TaqoRow{
			Query:       wq.Name,
			Correlation: score.Correlation,
			Sampled:     score.Sampled,
			SpaceSize:   score.SpaceSize,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------

func templateFeatures() map[int]tpcds.Feature {
	out := map[int]tpcds.Feature{}
	for _, t := range tpcds.Templates() {
		out[t.ID] = t.Features
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func logf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}

func expf(v float64) float64 { return math.Exp(v) }
