package experiments

import (
	"testing"

	"orca/internal/rival"
)

func smallConfig() Config {
	return Config{Segments: 8, Scale: 1, Seed: 42, Budget: 4_000_000}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 12 run skipped in -short mode")
	}
	env, err := NewEnv(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := env.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 25 {
		t.Fatalf("too few queries: %d", len(rows))
	}
	s := Summarize(rows)
	t.Logf("Figure 12: %d queries, suite speed-up %.1fx, geomean %.1fx, "+
		"same-or-better %.0f%%, %d timeout-capped, max %.0fx, worst %.2fx",
		s.Queries, s.SuiteSpeedup, s.GeoMeanSpeedup, 100*s.SameOrBetterFrac,
		s.TimeoutCapped, s.MaxSpeedup, s.WorstSlowdown)
	for _, r := range rows {
		t.Logf("  %-5s orca=%-9d planner=%-9d speedup=%6.1fx timeout=%v",
			r.Query, r.OrcaWork, r.PlannerWork, r.Speedup, r.PlannerTimedOut)
	}
	// Paper shape: Orca wins overall (5x suite-wide), ~80% same-or-better,
	// several timeout-capped outliers from correlated subqueries.
	if s.SuiteSpeedup < 2 {
		t.Errorf("suite speed-up %.2fx: expected a clear Orca win (paper: 5x)", s.SuiteSpeedup)
	}
	if s.SameOrBetterFrac < 0.6 {
		t.Errorf("same-or-better fraction %.2f: expected most queries to not regress", s.SameOrBetterFrac)
	}
	if s.TimeoutCapped == 0 {
		t.Error("expected at least one timeout-capped query (the 1000x phenomenon)")
	}
}

func TestFigure15Shape(t *testing.T) {
	env, err := NewEnv(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := env.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SupportRow{}
	for _, r := range rows {
		byName[r.System] = r
		t.Logf("Figure 15: %-8s optimize=%3d execute=%3d", r.System, r.Optimize, r.Execute)
	}
	if byName["HAWQ"].Optimize != 111 || byName["HAWQ"].Execute != 111 {
		t.Errorf("HAWQ must support all 111 queries, got %+v", byName["HAWQ"])
	}
	if byName["Presto"].Execute != 0 {
		t.Errorf("Presto executions must all fail (paper), got %d", byName["Presto"].Execute)
	}
	if !(byName["HAWQ"].Optimize > byName["Impala"].Optimize &&
		byName["Impala"].Optimize > byName["Presto"].Optimize) {
		t.Errorf("support ordering violated: %+v", rows)
	}
	if byName["Stinger"].Execute != byName["Stinger"].Optimize {
		t.Errorf("Stinger materializes to disk and should execute what it optimizes")
	}
}

func TestFigureRivalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("rival comparison skipped in -short mode")
	}
	env, err := NewEnv(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*rival.Profile{rival.Impala(), rival.Stinger()} {
		rows, err := env.FigureRival(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(rows) == 0 {
			t.Fatalf("%s: no comparable queries", p.Name)
		}
		wins := 0
		var logSum float64
		for _, r := range rows {
			if r.Speedup >= 1 {
				wins++
			}
			logSum += logf(r.Speedup)
			t.Logf("  %s %-5s hawq=%-9d rival=%-9d speedup=%6.1fx oom=%v",
				p.Name, r.Query, r.HAWQWork, r.RivalWork, r.Speedup, r.RivalOOM)
		}
		geo := expf(logSum / float64(len(rows)))
		t.Logf("Figure %s: %d queries, geomean speed-up %.1fx, HAWQ wins %d/%d",
			p.Name, len(rows), geo, wins, len(rows))
		if geo < 1.5 {
			t.Errorf("%s: expected a clear HAWQ win (paper: 6x/21x), got %.2fx", p.Name, geo)
		}
	}
}
