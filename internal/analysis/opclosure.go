package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"orca/internal/optgen"
)

// OpClosure verifies cross-package closure over the operator registries: an
// operator type added to internal/ops is useless — or worse, a runtime panic
// — until every subsystem that switches over operators learns about it. The
// required "legs" per operator kind:
//
//	logical:   xform (≥1 rule mentions it), stats derivation,
//	           DXL serializer, DXL parser
//	physical:  cost model, execution engine, DXL serializer
//	enforcer:  cost model, execution engine, DXL serializer
//	scalar:    execution engine, DXL serializer, DXL parser
//
// Physical operators need no DXL parse leg by design: AMPERe replay
// re-optimizes the dumped query and compares plan fingerprints instead of
// deserializing plans (DESIGN.md §10).
//
// A leg is established by any reference to the operator's type in the
// consumer package; the DXL legs additionally require the reference to sit
// inside a function whose name marks the direction (serialize* / parse*).
// BuildOpMatrix exposes the full matrix as an artifact for cmd/orcavet.
var OpClosure = &Analyzer{
	Name: "opclosure",
	Doc: "verifies every operator type is covered by the rule, stats, cost, " +
		"engine and DXL registries it must participate in (coverage matrix)",
	RunModule: runOpClosure,
}

// Operator kinds in the matrix.
const (
	KindLogical  = "logical"
	KindPhysical = "physical"
	KindEnforcer = "enforcer"
	KindScalar   = "scalar"
)

// OpCoverage is one operator's row in the matrix.
type OpCoverage struct {
	Name    string          `json:"name"`
	Kind    string          `json:"kind"`
	Legs    map[string]bool `json:"legs"`    // required leg -> satisfied
	Missing []string        `json:"missing"` // unsatisfied legs, sorted
	pos     int             // index for stable reporting; declaration pos below
	declPos ast.Node
}

// OpMatrix is the coverage artifact.
type OpMatrix struct {
	Ops []*OpCoverage `json:"ops"`
}

func runOpClosure(mp *ModulePass) {
	matrix := BuildOpMatrix(mp.Pkgs, mp.Config)
	for _, oc := range matrix.Ops {
		for _, leg := range oc.Missing {
			mp.Reportf(oc.declPos.Pos(), "%s operator %s has no %s leg (%s)",
				oc.Kind, oc.Name, leg, legHint(leg))
		}
	}
	crossCheckDefs(mp, matrix)
}

// crossCheckDefs verifies the defs/*.opt declarations against the Go
// inventory: every declared operator has a Go struct of the declared kind,
// every Go operator is declared, and every declared rule has its hand-written
// leg (apply<Name>, plus match<Name> when the rule sets check) in the xform
// package. Failures are reported at the .opt declaration, so a missing
// hand-written body points at the definition that promised it.
func crossCheckDefs(mp *ModulePass, matrix *OpMatrix) {
	dir := mp.Config.DefsDir
	if dir == "" {
		return
	}
	if _, err := os.Stat(dir); err != nil {
		return // no defs directory in this run (fixture tests)
	}
	cat, err := optgen.ParseDir(dir)
	if err != nil {
		mp.ReportPosf(token.Position{Filename: dir}, "defs parse error: %v", err)
		return
	}

	byName := make(map[string]*OpCoverage, len(matrix.Ops))
	for _, oc := range matrix.Ops {
		byName[oc.Name] = oc
	}
	declared := make(map[string]bool, len(cat.Ops))
	for _, od := range cat.Ops {
		declared[od.Name] = true
		pos := token.Position{Filename: od.File, Line: od.Line}
		oc := byName[od.Name]
		if oc == nil {
			mp.ReportPosf(pos, "operator %s is declared in defs but has no Go type in the ops package (run go generate ./...)", od.Name)
			continue
		}
		if oc.Kind != od.Kind {
			mp.ReportPosf(pos, "operator %s is declared %s but its Go type implements the %s interface", od.Name, od.Kind, oc.Kind)
		}
	}
	for _, oc := range matrix.Ops {
		if !declared[oc.Name] {
			mp.Reportf(oc.declPos.Pos(), "%s operator %s is not declared in %s/*.opt", oc.Kind, oc.Name, dir)
		}
	}

	xformPkg := pkgByPath(mp.Pkgs, mp.Config.XformPkgPath)
	if xformPkg == nil {
		return
	}
	scope := xformPkg.Types.Scope()
	hasFunc := func(name string) bool {
		_, ok := scope.Lookup(name).(*types.Func)
		return ok
	}
	for _, rd := range cat.Rules {
		pos := token.Position{Filename: rd.File, Line: rd.Line}
		if !hasFunc("apply" + rd.Name) {
			mp.ReportPosf(pos, "rule %s has no hand-written apply body (func apply%s) in the xform package", rd.Name, rd.Name)
		}
		if rd.Check && !hasFunc("match"+rd.Name) {
			mp.ReportPosf(pos, "rule %s sets check but has no hand-written predicate (func match%s) in the xform package", rd.Name, rd.Name)
		}
	}
}

func pkgByPath(pkgs []*Package, path string) *Package {
	for _, p := range pkgs {
		if p.PkgPath == path {
			return p
		}
	}
	return nil
}

func legHint(leg string) string {
	switch leg {
	case "xform":
		return "no transformation rule references it"
	case "stats":
		return "statistics derivation does not handle it"
	case "cost":
		return "the cost model does not handle it"
	case "engine":
		return "the execution engine does not handle it"
	case "dxl-serialize":
		return "no DXL serialize function references it"
	case "dxl-parse":
		return "no DXL parse function references it"
	}
	return "unknown leg"
}

// requiredLegs per operator kind.
func requiredLegs(kind string) []string {
	switch kind {
	case KindLogical:
		return []string{"xform", "stats", "dxl-serialize", "dxl-parse"}
	case KindPhysical, KindEnforcer:
		return []string{"cost", "engine", "dxl-serialize"}
	case KindScalar:
		return []string{"engine", "dxl-serialize", "dxl-parse"}
	}
	return nil
}

// BuildOpMatrix classifies every exported struct type of the ops package by
// the operator interface it implements and scans the consumer packages for
// references establishing each leg.
func BuildOpMatrix(pkgs []*Package, cfg *Config) *OpMatrix {
	var opsPkg *Package
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		if p.PkgPath == cfg.OpsPkgPath {
			opsPkg = p
		}
	}
	m := &OpMatrix{}
	if opsPkg == nil {
		return m
	}
	ifaceOf := func(name string) *types.Interface {
		tn, _ := opsPkg.Types.Scope().Lookup(name).(*types.TypeName)
		if tn == nil {
			return nil
		}
		it, _ := tn.Type().Underlying().(*types.Interface)
		return it
	}
	logical, physical := ifaceOf("Logical"), ifaceOf("Physical")
	enforcer, scalar := ifaceOf("Enforcer"), ifaceOf("ScalarExpr")

	// Inventory: exported struct types of the ops package, classified by the
	// most specific interface their pointer (or value) type implements.
	decls := make(map[types.Object]ast.Node)
	for _, file := range opsPkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				if obj := opsPkg.Info.Defs[ts.Name]; obj != nil {
					decls[obj] = ts
				}
			}
			return true
		})
	}
	names := opsPkg.Types.Scope().Names()
	sort.Strings(names)
	byType := make(map[types.Object]*OpCoverage)
	for i, name := range names {
		tn, ok := opsPkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		kind := classifyOp(named, logical, physical, enforcer, scalar)
		if kind == "" {
			continue
		}
		decl := decls[tn]
		if decl == nil {
			continue
		}
		oc := &OpCoverage{Name: name, Kind: kind, Legs: make(map[string]bool), pos: i, declPos: decl}
		for _, leg := range requiredLegs(kind) {
			oc.Legs[leg] = false
		}
		m.Ops = append(m.Ops, oc)
		byType[tn] = oc
	}

	// Constructor functions count as references to the type they build: a
	// parser calling ops.NewIdent covers Ident even though the type name
	// never appears at the call site.
	for _, name := range names {
		fn, ok := opsPkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			continue
		}
		res := sig.Results().At(0).Type()
		if ptr, isPtr := res.(*types.Pointer); isPtr {
			res = ptr.Elem()
		}
		if named, isNamed := res.(*types.Named); isNamed {
			if oc := byType[named.Obj()]; oc != nil {
				byType[fn] = oc
			}
		}
	}

	// Leg scan: references to inventory types in the consumer packages.
	markRefs := func(pkg *Package, mark func(oc *OpCoverage, funcName string)) {
		if pkg == nil {
			return
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				ast.Inspect(fd, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if oc := byType[pkg.Info.Uses[id]]; oc != nil {
						mark(oc, fd.Name.Name)
					}
					return true
				})
			}
		}
	}
	setLeg := func(oc *OpCoverage, leg string) {
		if _, required := oc.Legs[leg]; required {
			oc.Legs[leg] = true
		}
	}
	markRefs(byPath[cfg.XformPkgPath], func(oc *OpCoverage, _ string) { setLeg(oc, "xform") })
	markRefs(byPath[cfg.StatsPkgPath], func(oc *OpCoverage, _ string) { setLeg(oc, "stats") })
	markRefs(byPath[cfg.CostPkgPath], func(oc *OpCoverage, _ string) { setLeg(oc, "cost") })
	markRefs(byPath[cfg.EnginePkgPath], func(oc *OpCoverage, _ string) { setLeg(oc, "engine") })
	markRefs(byPath[cfg.DXLPkgPath], func(oc *OpCoverage, fn string) {
		lower := strings.ToLower(fn)
		if strings.Contains(lower, "serial") {
			setLeg(oc, "dxl-serialize")
		}
		if strings.Contains(lower, "parse") {
			setLeg(oc, "dxl-parse")
		}
	})

	for _, oc := range m.Ops {
		for _, leg := range requiredLegs(oc.Kind) {
			if !oc.Legs[leg] {
				oc.Missing = append(oc.Missing, leg)
			}
		}
		sort.Strings(oc.Missing)
	}
	return m
}

// classifyOp picks the operator kind, preferring the most specific
// interface. Non-operator structs (Expr, helpers) implement none and return
// "".
func classifyOp(named *types.Named, logical, physical, enforcer, scalar *types.Interface) string {
	impl := func(it *types.Interface) bool {
		if it == nil {
			return false
		}
		return types.Implements(named, it) || types.Implements(types.NewPointer(named), it)
	}
	switch {
	case impl(enforcer):
		return KindEnforcer
	case impl(physical):
		return KindPhysical
	case impl(logical):
		return KindLogical
	case impl(scalar):
		return KindScalar
	}
	return ""
}

// MarshalOpMatrix renders the matrix as JSON for the -opmatrix artifact.
func MarshalOpMatrix(m *OpMatrix) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// MarshalOpMatrixMarkdown renders the matrix as a markdown table — the
// leg-coverage view of the -opmatrix artifact. (The checked-in
// docs/opmatrix.md is generated from defs/*.opt by cmd/optgen; this table is
// the analyzer's independent verification of the same inventory.)
// A `+` leg is satisfied, `MISSING` is an opclosure finding, and `·` marks a
// leg the operator's kind does not require.
func MarshalOpMatrixMarkdown(m *OpMatrix) ([]byte, error) {
	columns := []string{"xform", "stats", "cost", "engine", "dxl-serialize", "dxl-parse"}
	var b strings.Builder
	b.WriteString("# Operator coverage matrix\n\n")
	b.WriteString("Generated by `go run ./cmd/orcavet -opmatrix <file>.md ./...`.\n")
	b.WriteString("Leg coverage as verified by the opclosure analyzer against the\n")
	b.WriteString("defs/*.opt declarations.\n\n")
	b.WriteString("| operator | kind |")
	for _, leg := range columns {
		b.WriteString(" " + leg + " |")
	}
	b.WriteString("\n|---|---|")
	for range columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, oc := range m.Ops {
		required := make(map[string]bool, 4)
		for _, leg := range requiredLegs(oc.Kind) {
			required[leg] = true
		}
		b.WriteString("| " + oc.Name + " | " + oc.Kind + " |")
		for _, leg := range columns {
			switch {
			case !required[leg]:
				b.WriteString(" · |")
			case oc.Legs[leg]:
				b.WriteString(" + |")
			default:
				b.WriteString(" MISSING |")
			}
		}
		b.WriteString("\n")
	}
	return []byte(b.String()), nil
}

// Render prints the matrix as an aligned text table.
func (m *OpMatrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-9s %s\n", "OPERATOR", "KIND", "LEGS")
	for _, oc := range m.Ops {
		legs := make([]string, 0, len(oc.Legs))
		for _, leg := range requiredLegs(oc.Kind) {
			mark := "+"
			if !oc.Legs[leg] {
				mark = "MISSING "
			}
			legs = append(legs, mark+leg)
		}
		fmt.Fprintf(&b, "%-22s %-9s %s\n", oc.Name, oc.Kind, strings.Join(legs, " "))
	}
	return b.String()
}
