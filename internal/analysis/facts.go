package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncFacts is the exported interprocedural summary of one function: what
// the analyzers need to know about a callee without re-walking its body.
// Function literals are folded into their enclosing declaration — a closure
// passed to a helper shares the fate of the function that built it.
type FuncFacts struct {
	// Key is the canonical function identity, types.Func.FullName():
	// "orca/internal/md.(*Accessor).Get".
	Key string `json:"key"`
	// PkgPath is the defining package.
	PkgPath string `json:"pkg"`
	// Exported reports an exported name (method names count on their own).
	Exported bool `json:"exported,omitempty"`

	// CtxParam is the name of the context.Context parameter ("" if none);
	// UsesCtx reports whether the body references it. A named, unused ctx
	// parameter is a dropped context (ctxflow).
	CtxParam string `json:"ctxParam,omitempty"`
	UsesCtx  bool   `json:"usesCtx,omitempty"`

	// Calls are the statically-resolved callee keys, sorted and deduplicated.
	Calls []string `json:"calls,omitempty"`
	// IfaceCalls are interface-dispatch edges as "pkgpath.Iface.Method",
	// devirtualized through Facts.IfaceImpls during reachability.
	IfaceCalls []string `json:"ifaceCalls,omitempty"`

	// ReturnsError reports an error in the result tuple; CallsErrSource
	// reports a direct call to a gpos/dxl function returning an error.
	// CarriesError is the transitive closure: the function's error result
	// (directly or through callees) can carry a gpos/dxl failure, so
	// discarding it hides optimizer failures (errdrop).
	ReturnsError   bool `json:"returnsError,omitempty"`
	CallsErrSource bool `json:"callsErrSource,omitempty"`
	CarriesError   bool `json:"carriesError,omitempty"`

	// RecvLocks lists receiver mutex fields the method locks ("mu" for
	// m.mu.Lock()); lockcheck uses it to flag calls into such a method while
	// the caller already holds the same field (Go mutexes do not reenter).
	RecvLocks []string `json:"recvLocks,omitempty"`

	// Hotpath marks a //orcavet:hotpath annotation; HotpathAllow lists the
	// hot-site classes the annotation waives for this function only.
	Hotpath      bool     `json:"hotpath,omitempty"`
	HotpathAllow []string `json:"hotpathAllow,omitempty"`
	// HotSites counts the body's latency hazards by class — the per-function
	// allocation summary the hotpath analyzer propagates along warm call
	// edges (see hotfacts.go).
	HotSites map[string]int `json:"hotSites,omitempty"`

	// Stop-path facts for golifetime: the body signals a sync.WaitGroup,
	// blocks in a select with a receive arm, or contains a loop with no
	// provable bound.
	WGDone       bool `json:"wgDone,omitempty"`
	CancelSelect bool `json:"cancelSelect,omitempty"`
	Unbounded    bool `json:"unbounded,omitempty"`
	// Spawns is golifetime's spawn-site table: one entry per `go` statement
	// in the body (function literals included).
	Spawns []*SpawnFact `json:"spawns,omitempty"`

	// LockAcquires lists the lock classes the body acquires directly (sorted,
	// deferred acquires excluded); TransLocks is the closure over static and
	// devirtualized call edges — every class the function can take somewhere
	// below it. lockorder uses these to order lock acquisitions globally.
	LockAcquires []string `json:"lockAcquires,omitempty"`
	TransLocks   []string `json:"transLocks,omitempty"`

	// MutatesRecv / MutatesParams report parameters (receiver included) the
	// function plainly writes through, closed over argument-passing edges.
	// pubimmut uses them to catch mutation of published objects via helpers.
	MutatesRecv   bool  `json:"mutatesRecv,omitempty"`
	MutatesParams []int `json:"mutatesParams,omitempty"`

	// RespCommit classifies what the function does with a ResponseWriter
	// handed to it: "always" (commits a response on every path), "may"
	// (commits on some), or "" (never writes). respwrite's fixpoint output.
	RespCommit string `json:"respCommit,omitempty"`

	// Positions are not exported (they are fset-relative); kept for
	// reporting.
	pos         token.Pos
	ctxParamPos token.Pos
	backgrounds []token.Pos // context.Background()/TODO() call sites
	provCalls   []token.Pos // md.Provider interface-method call sites

	// Hot/lifetime internals (computed in hotfacts.go, not serialized).
	hotAllow     map[string]bool
	hotpathPos   token.Pos
	hotSites     []hotSite
	warmCalls    []string
	warmIface    []string
	chanRanges   []chanRange
	sleepPolls   []token.Pos
	loopsForever bool

	// v4 internals: the lock-event timeline (lockfacts.go), the parameter
	// mutation/pass-through summary (pubfacts.go), and the gpos raise sites
	// (respfacts.go).
	lockOps   []lockOp
	mutParams map[int]bool
	paramPass []paramPassEdge
	raises    []raiseSite
}

// Facts is the module-wide interprocedural store shared by all analyzers in
// one run.
type Facts struct {
	cfg *Config
	// Funcs maps function keys to their summaries.
	Funcs map[string]*FuncFacts
	// AtomicFields registers struct fields that participate in sync/atomic
	// access, keyed "pkgpath.Type.field": fields of a declared sync/atomic
	// type, and fields whose address is passed to an old-style atomic.XxxNN
	// function anywhere in the module. atomicpub flags plain access to the
	// old-style set and non-atomic use of the declared set.
	AtomicFields map[string]string // key -> "declared" | "oldstyle"
	// IfaceImpls maps "pkgpath.Iface.Method" to the function keys of the
	// concrete implementations visible in the loaded packages.
	IfaceImpls map[string][]string
	// Roots are entry-point functions (exported functions of root packages);
	// Reachable is the call-graph closure from Roots through Calls and
	// devirtualized IfaceCalls.
	Roots     map[string]bool
	Reachable map[string]bool

	// Hot/lifetime stores (see hotfacts.go). pins caches the accessor-pin
	// function names; closedChans records channel fields closed anywhere in
	// the module; hotIssues holds malformed or floating hotpath directives.
	pins        map[string]bool
	closedChans map[string]bool
	hotIssues   []hotIssue

	// respFns retains the declarations of ResponseWriter-taking functions for
	// the respwrite commit fixpoint and rescans (respfacts.go).
	respFns map[string]*respFn
}

// ComputeFacts builds the facts store over the loaded packages. The result
// is deterministic: maps are populated from sorted traversals, and Export
// renders a canonical byte stream regardless of package order.
func ComputeFacts(pkgs []*Package, cfg *Config) *Facts {
	f := &Facts{
		cfg:          cfg,
		Funcs:        make(map[string]*FuncFacts),
		AtomicFields: make(map[string]string),
		IfaceImpls:   make(map[string][]string),
		Roots:        make(map[string]bool),
		Reachable:    make(map[string]bool),
		pins:         accessorPinNames(),
		closedChans:  make(map[string]bool),
	}
	for _, pkg := range pkgs {
		f.collectPkg(pkg)
	}
	f.collectIfaceImpls(pkgs)
	f.computeCarriers()
	f.computeReachability()
	f.finalizeHotLife()
	f.finalizeLockOrder()
	f.finalizeMutations()
	f.finalizeResp()
	return f
}

// collectPkg summarizes every function declaration of one package.
func (f *Facts) collectPkg(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ff := &FuncFacts{
				Key:      fn.FullName(),
				PkgPath:  pkg.PkgPath,
				Exported: fd.Name.IsExported(),
				pos:      fd.Pos(),
			}
			f.Funcs[ff.Key] = ff
			f.summarizeBody(pkg, fd, fn, ff)
			f.summarizeHotLife(pkg, fd, fn, ff)
			f.summarizeLockOps(pkg, fd, ff)
			f.summarizeMutations(pkg, fd, ff)
			f.summarizeResp(pkg, fd, fn, ff)
			if f.cfg.isRootPkg(pkg.PkgPath) && ff.Exported {
				f.Roots[ff.Key] = true
			}
		}
		// Old-style atomic calls and declared atomic fields can appear
		// outside function bodies too (var blocks, type decls).
		f.collectAtomicFields(pkg, file)
		f.collectHotDirectives(pkg, file)
	}
}

// summarizeBody fills the call edges, context facts, and lock facts of one
// declaration (function literals included).
func (f *Facts) summarizeBody(pkg *Package, fd *ast.FuncDecl, fn *types.Func, ff *FuncFacts) {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			ff.ReturnsError = true
		}
	}
	var ctxObj types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if !isNamed(pkg.Info.TypeOf(field.Type), "context", "Context") {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				ff.CtxParam = name.Name
				ff.ctxParamPos = name.Pos()
				ctxObj = pkg.Info.Defs[name]
			}
		}
	}
	if fd.Body == nil {
		return
	}
	calls := make(map[string]bool)
	ifaceCalls := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if ctxObj != nil && pkg.Info.Uses[n] == ctxObj {
				ff.UsesCtx = true
			}
		case *ast.CallExpr:
			f.summarizeCall(pkg, n, ff, calls, ifaceCalls)
		}
		return true
	})
	ff.Calls = sortedKeys(calls)
	ff.IfaceCalls = sortedKeys(ifaceCalls)
	if recv := sig.Recv(); recv != nil {
		ff.RecvLocks = recvLocks(pkg, fd, recv)
	}
}

// summarizeCall records one call expression's facts.
func (f *Facts) summarizeCall(pkg *Package, call *ast.CallExpr, ff *FuncFacts, calls, ifaceCalls map[string]bool) {
	// Interface dispatch: the selection's receiver is an interface type.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				if id := ifaceMethodID(s.Recv(), sel.Sel.Name); id != "" {
					ifaceCalls[id] = true
					if id == f.cfg.MDPkgPath+".Provider."+sel.Sel.Name {
						ff.provCalls = append(ff.provCalls, call.Pos())
					}
				}
				return
			}
		}
	}
	fn, _ := calleeObjPkg(pkg, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "context":
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			ff.backgrounds = append(ff.backgrounds, call.Pos())
		}
	case gposPkgPath, dxlPkgPath:
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) {
				ff.CallsErrSource = true
			}
		}
	}
	calls[fn.FullName()] = true
}

// ifaceMethodID renders an interface method as "pkgpath.Iface.Method", or ""
// for anonymous interfaces.
func ifaceMethodID(recv types.Type, method string) string {
	n := namedType(recv)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + method
}

// recvLocks finds receiver mutex fields the method write-locks
// (r.mu.Lock() with r the receiver identifier). Read locks are excluded:
// calling an RLock-ing method under an RLock does not deadlock, while a
// write Lock blocks under either mode.
func recvLocks(pkg *Package, fd *ast.FuncDecl, recv *types.Var) []string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvObj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}
	locked := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(inner.X).(*ast.Ident)
		if !ok || pkg.Info.Uses[base] != recvObj {
			return true
		}
		if t := pkg.Info.TypeOf(inner); isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex") {
			locked[inner.Sel.Name] = true
		}
		return true
	})
	return sortedKeys(locked)
}

// collectAtomicFields registers atomic-typed struct fields and fields whose
// address feeds an old-style sync/atomic function.
func (f *Facts) collectAtomicFields(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeSpec:
			st, ok := n.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !isAtomicType(pkg.Info.TypeOf(field.Type)) {
					continue
				}
				for _, name := range field.Names {
					f.AtomicFields[pkg.PkgPath+"."+n.Name.Name+"."+name.Name] = "declared"
				}
			}
		case *ast.CallExpr:
			if !isOldStyleAtomicCall(pkg, n) || len(n.Args) == 0 {
				return true
			}
			// First argument is the *addr: &x.f registers field f.
			if u, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if key := fieldKey(pkg, u.X); key != "" {
					if f.AtomicFields[key] == "" {
						f.AtomicFields[key] = "oldstyle"
					}
				}
			}
		}
		return true
	})
}

// isAtomicType reports a sync/atomic named type (Int64, Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// isOldStyleAtomicCall reports a call to a top-level sync/atomic function
// (atomic.LoadInt64, atomic.StorePointer, ...).
func isOldStyleAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	fn, _ := calleeObjPkg(pkg, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// fieldKey renders a selector resolving to a named struct's field as
// "pkgpath.Type.field", or "".
func fieldKey(pkg *Package, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	n := namedType(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + sel.Sel.Name
}

// collectIfaceImpls devirtualizes: for every named interface and every named
// concrete type in the loaded packages, record which methods implement which
// interface methods.
func (f *Facts) collectIfaceImpls(pkgs []*Package) {
	type iface struct {
		id string // pkgpath.Name
		it *types.Interface
	}
	var ifaces []iface
	var concretes []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if it, ok := named.Underlying().(*types.Interface); ok {
				if it.NumMethods() > 0 {
					ifaces = append(ifaces, iface{pkg.PkgPath + "." + name, it})
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, ic := range ifaces {
		for _, c := range concretes {
			impl := types.Type(c)
			if !types.Implements(impl, ic.it) {
				impl = types.NewPointer(c)
				if !types.Implements(impl, ic.it) {
					continue
				}
			}
			ms := types.NewMethodSet(impl)
			for i := 0; i < ic.it.NumMethods(); i++ {
				m := ic.it.Method(i)
				sel := ms.Lookup(m.Pkg(), m.Name())
				if sel == nil {
					continue
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					id := ic.id + "." + m.Name()
					f.IfaceImpls[id] = append(f.IfaceImpls[id], fn.FullName())
				}
			}
		}
	}
	for id := range f.IfaceImpls {
		sort.Strings(f.IfaceImpls[id])
	}
}

// computeCarriers closes CarriesError: a function carries a gpos/dxl error
// when it returns an error and (directly calls an error-returning gpos/dxl
// function, or calls a carrier). gpos/dxl's own functions are sources, not
// carriers — errdrop handles them directly.
func (f *Facts) computeCarriers() {
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			ff := f.Funcs[k]
			if ff.CarriesError || !ff.ReturnsError ||
				ff.PkgPath == gposPkgPath || ff.PkgPath == dxlPkgPath {
				continue
			}
			carries := ff.CallsErrSource
			for _, c := range ff.Calls {
				if cf := f.Funcs[c]; !carries && cf != nil && cf.CarriesError {
					carries = true
				}
			}
			if carries {
				ff.CarriesError = true
				changed = true
			}
		}
	}
}

// computeReachability closes Reachable from Roots over static and
// devirtualized interface call edges.
func (f *Facts) computeReachability() {
	queue := sortedKeys(f.Roots)
	for _, k := range queue {
		f.Reachable[k] = true
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		ff := f.Funcs[k]
		if ff == nil {
			continue
		}
		visit := func(callee string) {
			if !f.Reachable[callee] {
				f.Reachable[callee] = true
				queue = append(queue, callee)
			}
		}
		for _, c := range ff.Calls {
			visit(c)
		}
		for _, ic := range ff.IfaceCalls {
			for _, impl := range f.IfaceImpls[ic] {
				visit(impl)
			}
		}
	}
}

// Lookup returns the facts for a resolved function object, or nil.
func (f *Facts) Lookup(fn *types.Func) *FuncFacts {
	if fn == nil {
		return nil
	}
	return f.Funcs[fn.FullName()]
}

// exportedFacts is the serialized form of the store.
type exportedFacts struct {
	Funcs        []*FuncFacts        `json:"funcs"`
	AtomicFields map[string]string   `json:"atomicFields,omitempty"`
	IfaceImpls   map[string][]string `json:"ifaceImpls,omitempty"`
	Roots        []string            `json:"roots,omitempty"`
	Reachable    []string            `json:"reachable,omitempty"`
}

// Export renders the store canonically: functions sorted by key, string sets
// sorted, maps marshaled with sorted keys (encoding/json's map behavior).
// Two runs over the same sources produce identical bytes regardless of
// package load order, which is what makes the facts usable as a build
// artifact.
func (f *Facts) Export() ([]byte, error) {
	out := exportedFacts{
		AtomicFields: f.AtomicFields,
		IfaceImpls:   f.IfaceImpls,
		Roots:        sortedKeys(f.Roots),
		Reachable:    sortedKeys(f.Reachable),
	}
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Funcs = append(out.Funcs, f.Funcs[k])
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportFacts loads an exported store (positions are lost: imported facts
// serve cross-run comparison and tooling, not reporting).
func ImportFacts(data []byte) (*Facts, error) {
	var in exportedFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	f := &Facts{
		Funcs:        make(map[string]*FuncFacts, len(in.Funcs)),
		AtomicFields: in.AtomicFields,
		IfaceImpls:   in.IfaceImpls,
		Roots:        make(map[string]bool),
		Reachable:    make(map[string]bool),
	}
	if f.AtomicFields == nil {
		f.AtomicFields = make(map[string]string)
	}
	if f.IfaceImpls == nil {
		f.IfaceImpls = make(map[string][]string)
	}
	for _, ff := range in.Funcs {
		f.Funcs[ff.Key] = ff
	}
	for _, r := range in.Roots {
		f.Roots[r] = true
	}
	for _, r := range in.Reachable {
		f.Reachable[r] = true
	}
	return f, nil
}

// calleeObjPkg is calleeObj without a Pass (module analyzers and facts
// collection resolve callees per package).
func calleeObjPkg(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		if o := pkg.Info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// sortedKeys returns the map's keys sorted.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
