package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Sources map[string][]byte // filename -> source bytes
	Types   *types.Package
	Info    *types.Info

	ignores map[string][]*ignoreEntry // filename -> parsed ignore directives
}

// Loader type-checks packages of the enclosing module. Package metadata and
// dependency export data come from `go list -export`; only the packages
// under analysis are parsed and checked from source, exactly like the go
// vet driver. Loader is not safe for concurrent use.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	imp     types.Importer
	exports map[string]string // import path -> export data file
	meta    map[string]*listPkg
	extra   map[string]*types.Package // packages checked from source (fixtures)
	srcPkgs map[string]*Package       // module packages checked from source, by import path
}

// Import implements types.Importer: packages previously checked from source
// (fixture packages registered by LoadDir) shadow the gc export-data importer,
// which lets one fixture package import another even though `go list` cannot
// resolve their orcavet.test/... paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.extra[path]; ok {
		return p, nil
	}
	return l.imp.Import(path)
}

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewLoader builds a loader rooted at the module containing dir (or dir
// itself when empty, resolved from the working directory).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleDir: root,
		fset:      token.NewFileSet(),
		exports:   make(map[string]string),
		meta:      make(map[string]*listPkg),
		extra:     make(map[string]*types.Package),
		srcPkgs:   make(map[string]*Package),
	}
	out, err := l.goList("list", "-m")
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving module path: %w", err)
	}
	l.ModulePath = strings.TrimSpace(string(out))
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// list runs `go list -export -deps` over the patterns, caching metadata and
// export-data locations for the whole dependency closure. It returns the
// root (non-dependency) packages in listing order.
func (l *Loader) list(patterns ...string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		l.meta[p.ImportPath] = p
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// lookupExport feeds the gc importer the export data recorded by list.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	exp, ok := l.exports[path]
	if !ok {
		if _, err := l.list(path); err != nil {
			return nil, err
		}
		if exp, ok = l.exports[path]; !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(exp)
}

// Load type-checks the packages matching the go list patterns (e.g. "./...")
// from source and returns them in listing order. Test files are not
// included; `go vet` covers those.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(roots))
	for _, r := range roots {
		if len(r.GoFiles) == 0 {
			continue
		}
		// A module package already checked from source is returned as-is: a
		// re-check would mint a second types.Package for the same path while
		// everything that imported the first keeps referencing it, splitting
		// named-type identity for every later type-check through this loader.
		if pkg, ok := l.srcPkgs[r.ImportPath]; ok {
			pkgs = append(pkgs, pkg)
			continue
		}
		files := make([]string, len(r.GoFiles))
		for i, f := range r.GoFiles {
			files[i] = filepath.Join(r.Dir, f)
		}
		pkg, err := l.check(r.ImportPath, r.Dir, files)
		if err != nil {
			return nil, err
		}
		// Register the source-checked package so later packages in the
		// dependency-ordered listing import *this* types.Package rather than
		// its export-data twin. Object identity must hold across packages:
		// opclosure matches ops.TypeName objects seen from consumer packages.
		l.extra[r.ImportPath] = pkg.Types
		l.srcPkgs[r.ImportPath] = pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks the .go files of one directory as a package with the
// given import path, resolving its imports through the module. This is the
// entry point for testdata fixture packages, which live outside the module's
// package graph.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	pkg, err := l.check(pkgPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.extra[pkgPath] = pkg.Types
	return pkg, nil
}

func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Sources: make(map[string][]byte),
	}
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Sources[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
