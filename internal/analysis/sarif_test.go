package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// The SARIF log is a CI artifact: code-scanning ingestion needs the required
// 2.1.0 fields, diffs and baselines need stable rule IDs, and caching needs
// byte-identical output for identical input.

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/memo/memo.go", Line: 10, Column: 2},
			Analyzer: "hotpath",
			Message:  "hot path: call to fmt.Sprintf in //orcavet:hotpath function memo.Insert",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/gpos/tasks.go", Line: 60, Column: 3},
			Analyzer: "golifetime",
			Message:  "goroutine spawned in gpos.NewWorkerPool has no provable stop path",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/gpos/tasks.go", Line: 109, Column: 2},
			Analyzer: "lockorder",
			Message:  "lock orca/internal/gpos.WorkerPool.mu held across channel send",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/serve/plancache.go", Line: 135, Column: 2},
			Analyzer: "pubimmut",
			Message:  "e is written after it escaped through a plan-cache shard insert",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/serve/server.go", Line: 283, Column: 2},
			Analyzer: "respwrite",
			Message:  "response committed more than once",
		},
	}
}

// TestSARIFRequiredFields decodes the log generically and checks every field
// SARIF 2.1.0 requires of a minimal code-scanning upload: version, $schema,
// one run with a named tool driver, declared rules, and for each result a
// ruleId, level, message text, and a physical location with artifact URI and
// region start line.
func TestSARIFRequiredFields(t *testing.T) {
	data, err := MarshalSARIF(sampleDiags(), All(), "/mod")
	if err != nil {
		t.Fatalf("MarshalSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); s == "" {
		t.Errorf("$schema missing")
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "orcavet" {
		t.Errorf("driver name = %v, want orcavet", driver["name"])
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) < len(All()) {
		t.Fatalf("driver declares %d rules, want at least %d", len(rules), len(All()))
	}
	results, _ := run["results"].([]any)
	if len(results) != len(sampleDiags()) {
		t.Fatalf("got %d results, want %d", len(results), len(sampleDiags()))
	}
	declared := make(map[string]bool)
	for _, r := range rules {
		declared[r.(map[string]any)["id"].(string)] = true
	}
	for i, ra := range results {
		r := ra.(map[string]any)
		id, _ := r["ruleId"].(string)
		if !declared[id] {
			t.Errorf("result %d ruleId %q not declared in driver rules", i, id)
		}
		if r["level"] != "error" {
			t.Errorf("result %d level = %v, want error", i, r["level"])
		}
		msg, _ := r["message"].(map[string]any)
		if txt, _ := msg["text"].(string); txt == "" {
			t.Errorf("result %d has no message.text", i)
		}
		locs, _ := r["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string)
		if uri == "" || uri[0] == '/' {
			t.Errorf("result %d artifact URI %q, want root-relative", i, uri)
		}
		region := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line <= 0 {
			t.Errorf("result %d startLine = %v, want positive", i, region["startLine"])
		}
	}
}

// TestSARIFStableRuleIDs pins the rule IDs of all thirteen analyzers:
// baselines, suppress lists, and dashboards key on them, so renaming one is a
// breaking change that must show up in review as a test edit.
func TestSARIFStableRuleIDs(t *testing.T) {
	want := []string{
		"memoimmut", "lockcheck", "opexhaustive", "errdrop", "faultpoint",
		"atomicpub", "ctxflow", "opclosure", "hotpath", "golifetime",
		"lockorder", "pubimmut", "respwrite",
	}
	suite := All()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
	}
	data, err := MarshalSARIF(nil, suite, "")
	if err != nil {
		t.Fatalf("MarshalSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	got := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		got[r.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("rule %q missing from driver rules", id)
		}
	}
}

// TestBaselineFilterStale pins the stale-entry side of the baseline gate:
// entries that match no live finding are returned (multiset — a duplicated
// entry with one live finding leaves exactly one stale), so CI can fail a
// baseline whose accepted debt has already been paid down.
func TestBaselineFilterStale(t *testing.T) {
	live := Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/memo/memo.go", Line: 12, Column: 1},
		Analyzer: "hotpath",
		Message:  "still here",
	}
	b := &Baseline{Entries: []BaselineEntry{
		{Analyzer: "hotpath", File: "internal/memo/memo.go", Message: "still here"},
		{Analyzer: "hotpath", File: "internal/memo/memo.go", Message: "still here"},
		{Analyzer: "lockorder", File: "internal/gpos/tasks.go", Message: "long gone"},
	}}
	remaining, stale := b.Filter([]Diagnostic{live}, "/mod")
	if len(remaining) != 0 {
		t.Errorf("baselined finding not filtered: %v", remaining)
	}
	if len(stale) != 2 {
		t.Fatalf("got %d stale entries, want 2 (one duplicate + one gone): %v", len(stale), stale)
	}
	if stale[0].Message != "still here" || stale[1].Analyzer != "lockorder" {
		t.Errorf("stale entries mis-identified: %v", stale)
	}

	// A fully consumed baseline reports nothing stale.
	b.Entries = b.Entries[:1]
	remaining, stale = b.Filter([]Diagnostic{live}, "/mod")
	if len(remaining) != 0 || len(stale) != 0 {
		t.Errorf("clean baseline: remaining=%v stale=%v", remaining, stale)
	}
}

// TestSARIFDeterministic runs the full suite over the whole module twice,
// through independently loaded package sets, and demands byte-identical
// SARIF: analyzer order, map iteration, and facts layout must not leak into
// the artifact.
func TestSARIFDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module twice")
	}
	render := func() []byte {
		t.Helper()
		l, err := NewLoader("")
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		pkgs, err := l.Load("./...")
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		cfg := DefaultConfig()
		cfg.ReportUnusedIgnores = true
		data, err := MarshalSARIF(RunModule(pkgs, All(), cfg), All(), l.ModuleDir)
		if err != nil {
			t.Fatalf("MarshalSARIF: %v", err)
		}
		return data
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatalf("consecutive module-wide SARIF renders differ:\n--- first ---\n%.2000s\n--- second ---\n%.2000s", first, second)
	}
}
