package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces the scheduler's synchronization discipline (paper
// §4.2): condition variables must be re-checked in a loop after waking,
// every Lock needs a matching Unlock reachable on all return paths, and
// structs embedding a mutex must never be copied.
//
// It also guards the Memo's contention-free hot paths (DESIGN.md §11):
//   - memoindex: the Memo's lock-free group index (groupN/chunkDir) and its
//     sharded registries (stripes/reqStripes) may be touched only by the
//     accessor functions that uphold their publication protocol — everything
//     else must go through Group/NumGroups/InsertExpr/InternReq/LookupReq;
//   - ruleledger: the per-expression applied-rule ledger must stay a dense
//     bitset; reintroducing a string-keyed map would put string hashing back
//     on the rule-firing check path.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags sync.Cond.Wait calls not wrapped in a for loop, Lock calls " +
		"without a deferred/paired Unlock on every return path, copies " +
		"of structs containing sync primitives, direct access to the Memo's " +
		"lock-free index and sharded registries outside their accessors, and " +
		"string-keyed applied-rule ledgers",
	Run: runLockCheck,
}

func runLockCheck(p *Pass) {
	units := make(map[ast.Node]*lockUnit)
	unitFor := func(n ast.Node) *lockUnit {
		u := units[n]
		if u == nil {
			u = &lockUnit{}
			units[n] = u
		}
		return u
	}
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkLockCall(p, n, stack, unitFor)
			checkLockArgs(p, n)
			recordMethodCall(p, n, stack, unitFor)
		case *ast.SelectorExpr:
			checkMemoIndexAccess(p, n, stack)
		case *ast.StructType:
			checkStringRuleLedger(p, n)
		case *ast.ReturnStmt:
			if fn := enclosingFunc(stack); fn != nil {
				unitFor(fn).returns = append(unitFor(fn).returns, n.Pos())
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// Assigning to _ does not create a usable copy.
				if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
					continue
				}
				checkLockCopy(p, rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkLockCopy(p, v)
			}
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 {
				if t := p.TypeOf(n.Recv.List[0].Type); t != nil && containsLock(t) {
					p.Reportf(n.Recv.Pos(), "method %s has a value receiver of type %s, which contains a sync primitive and is copied on every call", n.Name.Name, t)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := p.TypeOf(n.Value); t != nil && containsLock(t) {
					p.Reportf(n.Value.Pos(), "range copies values of type %s, which contains a sync primitive", t)
				}
			}
		}
		return true
	})
	for _, u := range units {
		u.report(p)
		u.reportSelfDeadlocks(p)
	}
}

// recordMethodCall notes calls whose receiver is a plain expression, so the
// interprocedural self-deadlock check can relate them to held locks.
func recordMethodCall(p *Pass, call *ast.CallExpr, stack []ast.Node, unitFor func(ast.Node) *lockUnit) {
	if p.Facts == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := p.calleeObj(call).(*types.Func)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	owner := enclosingFunc(stack)
	if owner == nil {
		return
	}
	unitFor(owner).calls = append(unitFor(owner).calls, callEvent{
		pos:  call.Pos(),
		base: types.ExprString(sel.X),
		fn:   fn,
	})
}

// reportSelfDeadlocks uses the facts store to flag calls into a method that
// write-locks its receiver's mutex while the caller already holds that same
// mutex on the same receiver expression (Go mutexes do not reenter: x.mu is
// held, the callee's x.mu.Lock() blocks forever). Like the pairing check,
// held-ness is a straight-line source-order approximation.
func (u *lockUnit) reportSelfDeadlocks(p *Pass) {
	for _, c := range u.calls {
		ff := p.Facts.Lookup(c.fn)
		if ff == nil {
			continue
		}
		for _, field := range ff.RecvLocks {
			for _, mode := range []string{"W", "R"} {
				key := c.base + "." + field + "/" + mode
				if u.heldAt(key, c.pos) {
					p.Reportf(c.pos,
						"call to %s while %s.%s is held: the method locks its receiver's %s, which self-deadlocks",
						c.fn.Name(), c.base, field, field)
				}
			}
		}
	}
}

// heldAt reports whether a lock with the given key is held at pos: some lock
// event precedes pos with no intervening non-deferred unlock of the same key.
func (u *lockUnit) heldAt(key string, pos token.Pos) bool {
	for _, l := range u.locks {
		if l.key != key || l.pos >= pos {
			continue
		}
		released := false
		for _, ul := range u.unlocks {
			if ul.key == key && !ul.deferred && ul.pos > l.pos && ul.pos < pos {
				released = true
				break
			}
		}
		if !released {
			return true
		}
	}
	return false
}

// lockUnit accumulates the lock-relevant events of one function body.
type lockUnit struct {
	locks   []lockEvent
	unlocks []lockEvent
	returns []token.Pos
	calls   []callEvent
}

// callEvent is one method call that may interact with held locks.
type callEvent struct {
	pos  token.Pos
	base string // receiver expression, e.g. "s" in s.Flush()
	fn   *types.Func
}

type lockEvent struct {
	key      string // receiver expression + lock mode, e.g. "s.mu/W"
	pos      token.Pos
	deferred bool
}

// checkLockCall classifies mutex/condvar method calls. The owning function
// of an event is the nearest enclosing FuncDecl/FuncLit, except that a call
// inside a directly deferred func literal (defer func(){...}()) is credited,
// as deferred, to the function running the defer.
func checkLockCall(p *Pass, call *ast.CallExpr, stack []ast.Node, unitFor func(ast.Node) *lockUnit) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := p.TypeOf(sel.X)

	if sel.Sel.Name == "Wait" && isNamed(recv, "sync", "Cond") {
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return
			case *ast.FuncDecl, *ast.FuncLit:
				p.Reportf(call.Pos(), "sync.Cond.Wait must be wrapped in a for loop re-checking the condition (wakeups can be spurious)")
				return
			}
		}
		return
	}

	var mode string
	switch sel.Sel.Name {
	case "Lock", "Unlock":
		mode = "W"
	case "RLock", "RUnlock":
		mode = "R"
	default:
		return
	}
	if !isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex") {
		return
	}
	owner, deferred := lockOwner(stack)
	if owner == nil {
		return
	}
	ev := lockEvent{key: types.ExprString(sel.X) + "/" + mode, pos: call.Pos(), deferred: deferred}
	u := unitFor(owner)
	if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
		u.locks = append(u.locks, ev)
	} else {
		u.unlocks = append(u.unlocks, ev)
	}
}

// lockOwner walks outward to the function owning a lock event, looking
// through deferred func literals.
func lockOwner(stack []ast.Node) (owner ast.Node, deferred bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.DeferStmt:
			deferred = true
		case *ast.FuncLit:
			// Look through `defer func() { ... }()`.
			if i >= 2 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == n {
					if _, ok := stack[i-2].(*ast.DeferStmt); ok {
						deferred = true
						i -= 2
						continue
					}
				}
			}
			return n, deferred
		case *ast.FuncDecl:
			return n, deferred
		}
	}
	return nil, false
}

func (u *lockUnit) report(p *Pass) {
	type keyState struct {
		firstLock   token.Pos
		hasDeferred bool
	}
	keys := make(map[string]*keyState)
	for _, l := range u.locks {
		ks := keys[l.key]
		if ks == nil {
			keys[l.key] = &keyState{firstLock: l.pos}
		}
	}
	for _, ul := range u.unlocks {
		if ks := keys[ul.key]; ks != nil && ul.deferred {
			ks.hasDeferred = true
		}
	}
	for key, ks := range keys {
		var unlocks []token.Pos
		for _, ul := range u.unlocks {
			if ul.key == key {
				unlocks = append(unlocks, ul.pos)
			}
		}
		if len(unlocks) == 0 {
			p.Reportf(ks.firstLock, "%s without a matching %s in the same function", lockName(key), unlockName(key))
			continue
		}
		if ks.hasDeferred {
			continue
		}
		// Every return after a Lock needs an intervening Unlock.
		for _, ret := range u.returns {
			missing := false
			for _, l := range u.locks {
				if l.key != key || l.pos >= ret {
					continue
				}
				covered := false
				for _, up := range unlocks {
					if up > l.pos && up < ret {
						covered = true
						break
					}
				}
				if !covered {
					missing = true
				}
			}
			if missing {
				p.Reportf(ret, "return path may leave %s held: no %s between the %s and this return, and none is deferred", key[:len(key)-2], unlockName(key), lockName(key))
			}
		}
	}
}

func lockName(key string) string {
	if key[len(key)-1] == 'R' {
		return key[:len(key)-2] + ".RLock"
	}
	return key[:len(key)-2] + ".Lock"
}

func unlockName(key string) string {
	if key[len(key)-1] == 'R' {
		return key[:len(key)-2] + ".RUnlock"
	}
	return key[:len(key)-2] + ".Unlock"
}

// ---------------------------------------------------------------------------
// memoindex: the Memo's lock-free index and sharded registries

// memoIndexAccessors lists, per guarded Memo field, the only functions
// allowed to touch it directly. Everything else must use the accessors, which
// uphold the publication protocol (slot write → directory → count) and the
// stripe lock ordering (DESIGN.md §11). The rule keys on the struct name so
// the fixture package can exercise it without importing internal/memo.
var memoIndexAccessors = map[string]map[string]bool{
	"groupN":     {"New": true, "groupSnapshot": true, "Group": true, "NumGroups": true, "publishGroup": true},
	"chunkDir":   {"New": true, "groupSnapshot": true, "Group": true, "NumGroups": true, "publishGroup": true},
	"stripes":    {"New": true, "InsertExpr": true, "Validate": true},
	"reqStripes": {"New": true, "InternReq": true, "LookupReq": true},
}

// checkMemoIndexAccess flags selector expressions reaching into the Memo's
// lock-free group index or its sharded registries from outside the accessor
// functions that own their concurrency protocol.
func checkMemoIndexAccess(p *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	allowed, guarded := memoIndexAccessors[sel.Sel.Name]
	if !guarded {
		return
	}
	t := p.TypeOf(sel.X)
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Memo" {
		return
	}
	// The selection must be a struct field, not a method value.
	if s, ok := p.Pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if fn, ok := stack[i].(*ast.FuncDecl); ok {
			if allowed[fn.Name.Name] {
				return
			}
			break
		}
	}
	p.Reportf(sel.Pos(), "direct access to Memo.%s outside its accessors: the lock-free index and sharded registries must be reached through their accessor functions", sel.Sel.Name)
}

// checkStringRuleLedger flags struct fields named `applied` with a
// string-keyed map type: the applied-rule ledger is a bitset over dense rule
// IDs, and a string-keyed map would put hashing back on the rule-firing path.
func checkStringRuleLedger(p *Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name != "applied" {
				continue
			}
			t := p.TypeOf(f.Type)
			if m, ok := types.Unalias(t).(*types.Map); ok {
				if b, ok := m.Key().Underlying().(*types.Basic); ok && b.Kind() == types.String {
					p.Reportf(f.Pos(), "field applied is a string-keyed map: the applied-rule ledger must be a bitset over dense rule IDs (string hashing on the rule-firing path)")
				}
			}
		}
	}
}

// checkLockCopy flags reads that copy a value whose type contains a sync
// primitive (the copied lock is independent of the original, which silently
// breaks mutual exclusion).
func checkLockCopy(p *Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // composite literals, calls, &x, ... do not copy an existing value
	}
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if _, isVar := p.ObjectOf(id).(*types.Var); !isVar {
			return
		}
	}
	if t := p.TypeOf(rhs); t != nil && containsLock(t) {
		p.Reportf(rhs.Pos(), "assignment copies a value of type %s, which contains a sync primitive", t)
	}
}

// checkLockArgs flags passing a lock-bearing struct by value to a function.
func checkLockArgs(p *Pass, call *ast.CallExpr) {
	if tv, ok := p.Pkg.Info.Types[call.Fun]; !ok || tv.IsType() || tv.IsBuiltin() {
		return // conversion or builtin, not a call
	}
	if _, ok := p.TypeOf(call.Fun).Underlying().(*types.Signature); !ok {
		return
	}
	for _, arg := range call.Args {
		switch ast.Unparen(arg).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if t := p.TypeOf(arg); t != nil && containsLock(t) {
				p.Reportf(arg.Pos(), "call passes a value of type %s by value, which contains a sync primitive", t)
			}
		}
	}
}

// containsLock reports whether a value of type t embeds a sync primitive
// (directly or through nested structs/arrays). Pointers do not propagate.
func containsLock(t types.Type) bool {
	return containsLock1(t, make(map[types.Type]bool))
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once", "Pool", "Map":
				return true
			}
		}
		return containsLock1(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}
