package analysis

// This file extends the facts layer with the summaries behind the hotpath
// and golifetime analyzers:
//
//   - a //orcavet:hotpath annotation grammar marking latency-critical
//     functions, with a small set of waivable hot-site classes;
//   - per-function hot-site summaries (heap allocations that escape, fmt
//     calls, string concatenation, capturing closures, defer in loops, map
//     iteration feeding ordered output, unblessed mutex acquisition,
//     interface boxing at call boundaries), pruned along provable
//     failure paths so error plumbing does not drown the signal;
//   - warm call edges — the static calls that execute on the hot path —
//     along which hotpath propagates annotations interprocedurally;
//   - golifetime's spawn-site table: one entry per `go` statement with its
//     capture set and a provable-stop-path classification, plus the
//     per-function stop facts (WaitGroup signaling, cancellation selects,
//     unbounded loops) the classification consults.
//
// Everything here is computed once per run inside ComputeFacts, mirroring
// how atomicpub and ctxflow consume the shared store.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathDirective is the comment prefix that marks a hot function:
//
//	//orcavet:hotpath[:<allow>[,<allow>]] reason
//
// in the doc comment of a function declaration. The optional allow list
// waives specific hot-site classes for that function only (allowances do not
// propagate to callees). A reason is mandatory, as with //orcavet:ignore.
const hotpathDirective = "orcavet:hotpath"

// Hot-site classes reported by hotpath and counted in FuncFacts.HotSites.
const (
	HotFmt      = "fmt"      // call into package fmt
	HotConcat   = "concat"   // string concatenation via + / +=
	HotAlloc    = "alloc"    // escaping make/new/composite allocation
	HotClosure  = "closure"  // capturing function literal
	HotDefer    = "defer"    // defer inside a loop
	HotMapOrder = "maporder" // map iteration feeding ordered output
	HotLock     = "lock"     // mutex acquisition outside the accessor pins
	HotBox      = "box"      // interface boxing at a call boundary
)

// hotAllowable lists the classes an annotation may waive. fmt and string
// concatenation are deliberately absent: re-introducing formatting on a hot
// path is the exact regression class the analyzer exists to stop, so it can
// only be suppressed with a line-scoped //orcavet:ignore, never blanket-waived
// for a whole function.
var hotAllowable = map[string]bool{
	HotAlloc:    true,
	HotLock:     true,
	HotBox:      true,
	HotClosure:  true,
	HotDefer:    true,
	HotMapOrder: true,
}

// hotSite is one latency hazard at a source position.
type hotSite struct {
	pos    token.Pos
	class  string
	detail string
}

// hotIssue is a problem with the annotation machinery itself (malformed or
// floating directive), reported by the hotpath analyzer.
type hotIssue struct {
	pos token.Pos
	msg string
}

// SpawnFact describes one `go` statement: golifetime's spawn-site table.
type SpawnFact struct {
	// Target is the spawned function's key, or "func literal".
	Target string `json:"target"`
	// Pos is the spawn's source position ("file:line:col"), stable across
	// runs over the same tree.
	Pos string `json:"pos"`
	// Captures lists the enclosing-function variables a spawned literal
	// captures, sorted.
	Captures []string `json:"captures,omitempty"`
	// Stop classifies the provable stop path: "waitgroup" (the goroutine
	// signals a sync.WaitGroup), "select" (it blocks in a select with a
	// receive arm — the ctx.Done / done-channel pattern), "bounded" (neither,
	// but no unbounded loop in the body or its static callees), or "none".
	Stop string `json:"stop"`

	pos         token.Pos
	wgDone      bool
	sel         bool
	unbound     bool
	calls       []string
	loopVars    []hotIssue     // captured loop variables (msg = variable name)
	sends       []token.Pos    // unbuffered sends with no cancellation arm
	sleeps      []token.Pos    // time.Sleep polling loops inside the literal
	chanRanges  []chanRange    // channel-field ranges pending close resolution
	localRanges []types.Object // local-channel ranges pending close resolution
}

// chanRange is a range over a channel pending module-wide close resolution:
// ranging a channel field is bounded only if some function closes that field.
type chanRange struct {
	fieldKey string // "pkgpath.Type.field", or "" when resolved locally
	ok       bool   // already proven stoppable (local close / parameter)
}

// accessorPinNames is the union of function names blessed by lockcheck's
// accessor-pin table: their lock acquisitions implement the documented
// Memo index protocol and are not re-reported by hotpath.
func accessorPinNames() map[string]bool {
	names := make(map[string]bool)
	for _, fns := range memoIndexAccessors {
		for name := range fns {
			names[name] = true
		}
	}
	return names
}

// errorIfaceType returns the universe error interface.
func errorIfaceType() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// implementsErrorConcrete reports a non-interface type implementing error —
// a definite failure value (a nil-free raise), unlike an error-typed call
// result which may be nil.
func implementsErrorConcrete(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	return types.Implements(t, errorIfaceType())
}

// parseHotpath parses the directive tail after "orcavet:hotpath": an optional
// ":a1,a2" allowance scope followed by the mandatory free-text reason. It
// returns the allowance set and a description of what is malformed ("" when
// well-formed).
func parseHotpath(tail string) (allow map[string]bool, malformed string) {
	if strings.HasPrefix(tail, ":") {
		rest := tail[1:]
		scope := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			scope, rest = rest[:i], rest[i:]
		} else {
			rest = ""
		}
		allow = make(map[string]bool)
		for _, name := range strings.Split(scope, ",") {
			name = strings.TrimSpace(name)
			switch {
			case name == "":
				malformed = "empty allowance in scope"
			case name == HotFmt || name == HotConcat:
				malformed = "allowance " + quote(name) + " cannot be waived on a hot path"
			case !hotAllowable[name]:
				malformed = "unknown allowance " + quote(name) + " (valid: alloc, box, closure, defer, lock, maporder)"
			default:
				allow[name] = true
			}
		}
		tail = rest
	}
	if strings.TrimSpace(tail) == "" && malformed == "" {
		malformed = "missing reason"
	}
	return allow, malformed
}

// quote wraps s in double quotes without pulling fmt into the parse path.
func quote(s string) string { return `"` + s + `"` }

// hotDirectiveText extracts the directive tail from a comment, or ok=false.
func hotDirectiveText(c *ast.Comment) (string, bool) {
	text := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), "*/"))
	if !strings.HasPrefix(text, hotpathDirective) {
		return "", false
	}
	return text[len(hotpathDirective):], true
}

// collectHotDirectives parses //orcavet:hotpath annotations in one file:
// directives attached to a function declaration's doc comment configure that
// function's facts; directives anywhere else are floating and reported.
func (f *Facts) collectHotDirectives(pkg *Package, file *ast.File) {
	attached := make(map[*ast.Comment]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		ff := f.Funcs[fn.FullName()]
		for _, c := range fd.Doc.List {
			tail, ok := hotDirectiveText(c)
			if !ok {
				continue
			}
			attached[c] = true
			allow, malformed := parseHotpath(tail)
			if malformed != "" {
				f.hotIssues = append(f.hotIssues, hotIssue{c.Pos(),
					"malformed //orcavet:hotpath directive: " + malformed})
				continue
			}
			if ff != nil {
				ff.Hotpath = true
				ff.hotAllow = allow
				ff.hotpathPos = c.Pos()
				ff.HotpathAllow = sortedKeys(allow)
			}
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if _, ok := hotDirectiveText(c); ok && !attached[c] {
				f.hotIssues = append(f.hotIssues, hotIssue{c.Pos(),
					"//orcavet:hotpath directive must be in a function declaration's doc comment"})
			}
		}
	}
}

// hotWalk carries the state of one function declaration's hot/lifetime walk.
type hotWalk struct {
	f       *Facts
	pkg     *Package
	fd      *ast.FuncDecl
	ff      *FuncFacts
	factory bool // error factory: whole body is failure-path plumbing
	blessed bool // accessor-pin function: its locks are the protocol

	fresh        []*freshAlloc // escape-tracked candidate allocations
	freshObjs    map[types.Object]*freshAlloc
	trackedRHS   map[ast.Expr]bool     // alloc expressions under escape tracking
	chanBuf      map[types.Object]bool // local channels: buffered?
	closedLocals map[types.Object]bool // local channels closed in this body
	localRanges  []types.Object        // local-channel ranges pending resolution
	warm         map[string]bool
	warmIface    map[string]bool
	curSpawn     *SpawnFact // spawn whose literal is being summarized
}

type freshAlloc struct {
	obj     types.Object
	site    hotSite
	escaped bool
}

// isErrorFactory reports a function whose every result is a concrete
// error-implementing type — a constructor of failure values (gpos.Raise,
// PanicException). Its whole body is cold: nothing in it runs on a healthy
// hot path.
func isErrorFactory(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !implementsErrorConcrete(sig.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

// summarizeHotLife fills ff's hot-site, warm-edge, stop-path, and spawn-site
// facts from one declaration's body.
func (f *Facts) summarizeHotLife(pkg *Package, fd *ast.FuncDecl, fn *types.Func, ff *FuncFacts) {
	if fd.Body == nil {
		return
	}
	w := &hotWalk{
		f: f, pkg: pkg, fd: fd, ff: ff,
		factory:    isErrorFactory(fn),
		blessed:    f.pins[fd.Name.Name],
		freshObjs:  make(map[types.Object]*freshAlloc),
		trackedRHS: make(map[ast.Expr]bool),
		chanBuf:    make(map[types.Object]bool),
		warm:       make(map[string]bool),
		warmIface:  make(map[string]bool),
	}
	w.seedLocals()
	w.walk()
	for _, fr := range w.fresh {
		if fr.escaped {
			ff.hotSites = append(ff.hotSites, fr.site)
		}
	}
	ff.warmCalls = sortedKeys(w.warm)
	ff.warmIface = sortedKeys(w.warmIface)
}

// seedLocals records escape-trackable allocations bound to fresh locals
// (stack-allocatable until proven escaping) and local channel creations with
// their buffering, from every `x := ...` in the body.
func (w *hotWalk) seedLocals() {
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := w.pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ch, buffered, ok := w.chanMake(rhs); ok && ch {
				w.chanBuf[obj] = buffered
				continue
			}
			if site, ok := w.trackableAlloc(rhs); ok {
				fr := &freshAlloc{obj: obj, site: site}
				w.fresh = append(w.fresh, fr)
				w.freshObjs[obj] = fr
				w.trackedRHS[rhs] = true
			}
		}
		return true
	})
}

// chanMake reports whether e is make(chan T[, n]) and whether n is a
// non-zero constant (buffered).
func (w *hotWalk) chanMake(e ast.Expr) (isChan, buffered, ok bool) {
	call, okc := e.(*ast.CallExpr)
	if !okc || len(call.Args) == 0 {
		return false, false, false
	}
	id, oki := ast.Unparen(call.Fun).(*ast.Ident)
	if !oki || id.Name != "make" || w.pkg.Info.Uses[id] != nil && w.pkg.Info.Uses[id] != types.Universe.Lookup("make") {
		return false, false, false
	}
	t := w.pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return false, false, false
	}
	if _, okch := t.Underlying().(*types.Chan); !okch {
		return false, false, false
	}
	buffered = false
	if len(call.Args) >= 2 {
		if tv, okv := w.pkg.Info.Types[call.Args[1]]; okv && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact && v > 0 {
				buffered = true
			}
		} else {
			buffered = true // non-constant capacity: assume intentional buffering
		}
	}
	return true, buffered, true
}

// trackableAlloc reports whether e is an allocation whose escape can be
// decided locally (&T{...}, make([]T, ...), []T{...}, new(T)). Map and
// channel makes are not trackable: they allocate regardless of escape.
func (w *hotWalk) trackableAlloc(e ast.Expr) (hotSite, bool) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return hotSite{e.Pos(), HotAlloc, "escaping " + types.ExprString(e) + " allocation"}, true
			}
		}
	case *ast.CompositeLit:
		if t := w.pkg.Info.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return hotSite{e.Pos(), HotAlloc, "escaping slice literal"}, true
			}
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			break
		}
		switch id.Name {
		case "make":
			if len(e.Args) > 0 {
				if t := w.pkg.Info.TypeOf(e.Args[0]); t != nil {
					if _, okSlice := t.Underlying().(*types.Slice); okSlice {
						return hotSite{e.Pos(), HotAlloc, "escaping make(" + types.ExprString(e.Args[0]) + ")"}, true
					}
				}
			}
		case "new":
			return hotSite{e.Pos(), HotAlloc, "escaping " + types.ExprString(e) + " allocation"}, true
		}
	}
	return hotSite{}, false
}

// finalizeHotLife resolves the facts that need the whole module: ranges over
// channel fields check the module-wide close set, the loops-forever fixpoint
// closes over static call edges, every spawn gets its stop classification,
// and the per-function hot-site summaries are exported.
func (f *Facts) finalizeHotLife() {
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ff := f.Funcs[k]
		for _, cr := range ff.chanRanges {
			if !cr.ok && cr.fieldKey != "" && !f.closedChans[cr.fieldKey] {
				ff.Unbounded = true
			}
		}
	}
	// A function loops forever when it contains an unbounded loop or
	// statically calls a function that does (monotone fixpoint, like
	// computeCarriers).
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			ff := f.Funcs[k]
			if ff.loopsForever {
				continue
			}
			lf := ff.Unbounded
			for _, c := range ff.Calls {
				if cf := f.Funcs[c]; !lf && cf != nil && cf.loopsForever {
					lf = true
				}
			}
			if lf {
				ff.loopsForever = true
				changed = true
			}
		}
	}
	for _, k := range keys {
		ff := f.Funcs[k]
		for _, sp := range ff.Spawns {
			for _, cr := range sp.chanRanges {
				if !cr.ok && cr.fieldKey != "" && !f.closedChans[cr.fieldKey] {
					sp.unbound = true
				}
			}
			sp.Stop = f.classifySpawn(sp)
		}
		if len(ff.hotSites) > 0 {
			ff.HotSites = make(map[string]int, 4)
			for _, s := range ff.hotSites {
				ff.HotSites[s.class]++
			}
		}
	}
}

// classifySpawn derives the provable stop path of one spawn from the facts:
// WaitGroup signaling beats a cancellation select beats bounded iteration;
// a goroutine with none of the three is a leak candidate.
func (f *Facts) classifySpawn(sp *SpawnFact) string {
	if sp.Target == "func literal" {
		switch {
		case sp.wgDone:
			return "waitgroup"
		case sp.sel:
			return "select"
		case sp.unbound:
			return "none"
		}
		for _, c := range sp.calls {
			if cf := f.Funcs[c]; cf != nil && cf.loopsForever {
				return "none"
			}
		}
		return "bounded"
	}
	tf := f.Funcs[sp.Target]
	if tf == nil {
		return "none"
	}
	switch {
	case tf.WGDone:
		return "waitgroup"
	case tf.CancelSelect:
		return "select"
	case tf.loopsForever:
		return "none"
	}
	return "bounded"
}
