package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Package paths whose invariants the analyzers enforce.
const (
	memoPkgPath   = "orca/internal/memo"
	opsPkgPath    = "orca/internal/ops"
	gposPkgPath   = "orca/internal/gpos"
	dxlPkgPath    = "orca/internal/dxl"
	searchPkgPath = "orca/internal/search"
	faultPkgPath  = "orca/internal/fault"
	mdPkgPath     = "orca/internal/md"
)

// MemoImmut enforces the Memo's append-only contract (paper §4.1): once a
// group expression is inserted, its operator and child groups never change,
// because the fingerprint-based duplicate detection and the per-group
// optimization contexts both key off them.
var MemoImmut = &Analyzer{
	Name: "memoimmut",
	Doc: "flags writes to memo.Group/memo.GroupExpr/memo.OptContext fields " +
		"from outside internal/memo, and mutation of a child-group slice " +
		"after it was handed to Memo.InsertExpr (the Memo retains the slice)",
	Run: runMemoImmut,
}

func runMemoImmut(p *Pass) {
	if p.Pkg.Types.Path() == memoPkgPath {
		return
	}
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMemoWrite(p, lhs)
			}
		case *ast.IncDecStmt:
			checkMemoWrite(p, n.X)
		case *ast.FuncDecl:
			if n.Body != nil {
				checkInsertRetention(p, n.Body)
			}
		}
		return true
	})
}

// checkMemoWrite flags `x.Field = v` and `x.Children[i] = v` where x is a
// memo.Group, memo.GroupExpr, memo.Memo or memo.OptContext. OptContext is
// covered because the goal-driven search relies on its Group/Req binding and
// per-epoch completion markers being written only through the memo package's
// accessors (Offer/MarkDone).
func checkMemoWrite(p *Pass, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ast.Unparen(idx.X)
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := p.TypeOf(sel.X)
	for _, name := range [...]string{"Group", "GroupExpr", "Memo", "OptContext"} {
		if isNamed(base, memoPkgPath, name) {
			p.Reportf(sel.Pos(), "write to memo.%s.%s outside internal/memo: memo structures are append-only once inserted", name, sel.Sel.Name)
			return
		}
	}
}

// checkInsertRetention flags mutations of a slice variable after it was
// passed as the children argument of Memo.InsertExpr. InsertExpr stores the
// slice in the new GroupExpr, so later writes through the caller's variable
// would corrupt the Memo's duplicate-detection fingerprints.
func checkInsertRetention(p *Pass, body *ast.BlockStmt) {
	// Pass 1: record (variable, position) for child-slice arguments.
	type retained struct {
		v   *types.Var
		end token.Pos
	}
	var handedOff []retained
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		fn, _ := p.calleeObj(call).(*types.Func)
		if fn == nil || fn.Name() != "InsertExpr" || fn.Pkg() == nil || fn.Pkg().Path() != memoPkgPath {
			return true
		}
		if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
			if v, ok := p.ObjectOf(id).(*types.Var); ok {
				handedOff = append(handedOff, retained{v: v, end: call.End()})
			}
		}
		return true
	})
	if len(handedOff) == 0 {
		return
	}
	retainedAt := func(id *ast.Ident) (token.Pos, bool) {
		v, _ := p.ObjectOf(id).(*types.Var)
		if v == nil {
			return token.NoPos, false
		}
		for _, r := range handedOff {
			if r.v == v && id.Pos() > r.end {
				return r.end, true
			}
		}
		return token.NoPos, false
	}
	// Pass 2: flag writes through those variables after the call.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			switch lhs := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
					if _, ok := retainedAt(id); ok {
						p.Reportf(lhs.Pos(), "mutation of slice %s after it was passed to Memo.InsertExpr, which retains it", id.Name)
					}
				}
			case *ast.Ident:
				// x = append(x, ...) can write into the retained backing array.
				if i >= len(as.Rhs) {
					continue
				}
				call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
					continue
				}
				arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok || p.ObjectOf(arg) == nil || p.ObjectOf(arg) != p.ObjectOf(lhs) {
					continue
				}
				if _, ok := retainedAt(lhs); ok {
					p.Reportf(lhs.Pos(), "append to slice %s after it was passed to Memo.InsertExpr may write into the retained backing array", lhs.Name)
				}
			}
		}
		return true
	})
}
