package analysis

// The hot/lifetime walk: one ancestor-stack traversal per function
// declaration classifying hot sites (with cold-path pruning), recording warm
// call edges, stop-path facts, and the spawn-site table. See hotfacts.go for
// the data model.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walk traverses the declaration's body with an ancestor stack.
func (w *hotWalk) walk() {
	var stack []ast.Node
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		w.visit(n, stack)
		stack = append(stack, n)
		return true
	})
	// Resolve ranges over function-local channels: a local channel never
	// closed in this function has no visible producer-side stop.
	for _, sp := range w.ff.Spawns {
		for _, obj := range sp.localRanges {
			if obj.Pos() >= w.fd.Body.Pos() && !w.closedLocals[obj] {
				sp.unbound = true
			}
		}
	}
	for _, obj := range w.localRanges {
		if obj.Pos() >= w.fd.Body.Pos() && !w.closedLocals[obj] {
			w.ff.Unbounded = true
		}
	}
}

// inSpawnedLit reports whether the current node lies inside a `go func(){}`
// literal: such code runs on another goroutine, so it belongs to the spawn's
// facts, not the enclosing function's hot path or stop facts.
func inSpawnedLit(stack []ast.Node) bool {
	for i := 2; i < len(stack); i++ {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			continue
		}
		if _, ok := stack[i-2].(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// coldAt reports whether the current position is failure-path plumbing: an
// enclosing block whose final statement returns a definite failure value or
// panics, or an enclosing recover guard. Hot sites and warm call edges in
// cold positions are pruned — error construction is allowed to allocate.
func (w *hotWalk) coldAt(stack []ast.Node) bool {
	for _, anc := range stack {
		switch anc := anc.(type) {
		case *ast.BlockStmt:
			if w.coldTail(anc.List) {
				return true
			}
		case *ast.CaseClause:
			if w.coldTail(anc.Body) {
				return true
			}
		case *ast.CommClause:
			if w.coldTail(anc.Body) {
				return true
			}
		case *ast.IfStmt:
			if w.recoverGuard(anc) {
				return true
			}
		}
	}
	return false
}

// coldTail reports whether the block's last statement is a cold return or a
// panic.
func (w *hotWalk) coldTail(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if w.definiteFailure(res) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// definiteFailure reports an expression that is a failure value whenever it
// is returned: a concrete error-typed call result (gpos.Raise and friends
// return *Exception, never nil), a call into the gpos/dxl error layers, or a
// freshly constructed error value.
func (w *hotWalk) definiteFailure(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if implementsErrorConcrete(w.pkg.Info.TypeOf(e)) {
			return true
		}
		if fn, _ := calleeObjPkg(w.pkg, e).(*types.Func); fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == gposPkgPath || p == dxlPkgPath {
				return isErrorType(w.pkg.Info.TypeOf(e)) || implementsErrorConcrete(w.pkg.Info.TypeOf(e))
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return implementsErrorConcrete(w.pkg.Info.TypeOf(e))
		}
	case *ast.CompositeLit:
		return implementsErrorConcrete(w.pkg.Info.TypeOf(e))
	}
	return false
}

// recoverGuard reports `if r := recover(); r != nil`-shaped guards.
func (w *hotWalk) recoverGuard(ifs *ast.IfStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	}
	if ifs.Init != nil {
		ast.Inspect(ifs.Init, check)
	}
	ast.Inspect(ifs.Cond, check)
	return found
}

// visit dispatches one node of the walk.
func (w *hotWalk) visit(n ast.Node, stack []ast.Node) {
	spawned := inSpawnedLit(stack)
	// Escape tracking and module-wide channel closes run everywhere — an
	// escape on a cold branch still forces the heap allocation, and a close
	// inside any branch still stops a ranging consumer.
	if id, ok := n.(*ast.Ident); ok {
		w.checkEscape(id, stack)
	}
	if call, ok := n.(*ast.CallExpr); ok {
		w.checkClose(call)
	}
	if gs, ok := n.(*ast.GoStmt); ok {
		w.recordSpawn(gs, stack)
	}
	if !spawned {
		w.stopFacts(n, stack)
	}
	if w.factory || spawned || w.coldAt(stack) {
		return
	}
	w.hotSite(n, stack)
}

// checkClose registers close(x) calls: field channels module-wide, local
// channels for this function's range resolution.
func (w *hotWalk) checkClose(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if key := fieldKey(w.pkg, arg); key != "" {
		w.f.closedChans[key] = true
		return
	}
	if aid, ok := arg.(*ast.Ident); ok {
		if obj := w.pkg.Info.Uses[aid]; obj != nil {
			if w.closedLocals == nil {
				w.closedLocals = make(map[types.Object]bool)
			}
			w.closedLocals[obj] = true
		}
	}
}

// stopFacts records the enclosing function's golifetime facts.
func (w *hotWalk) stopFacts(n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if w.isWGDone(n) {
			w.ff.WGDone = true
		}
		if w.isTimeSleep(n) && loopWithoutSelect(stack) {
			w.ff.sleepPolls = append(w.ff.sleepPolls, n.Pos())
		}
	case *ast.SelectStmt:
		if selectHasReceive(n) {
			w.ff.CancelSelect = true
		}
	case *ast.ForStmt:
		if n.Cond == nil && !containsSelect(n.Body) {
			w.ff.Unbounded = true
		}
	case *ast.RangeStmt:
		w.rangeStop(n, func(fieldKey string) {
			w.ff.chanRanges = append(w.ff.chanRanges, chanRange{fieldKey: fieldKey})
		}, func(obj types.Object) {
			w.localRanges = append(w.localRanges, obj)
		})
	}
}

// rangeStop classifies a range over a channel: field channels resolve against
// the module-wide close set, locals against this function's closes;
// parameters are conservatively assumed producer-closed.
func (w *hotWalk) rangeStop(n *ast.RangeStmt, onField func(string), onLocal func(types.Object)) {
	t := w.pkg.Info.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return
	}
	x := ast.Unparen(n.X)
	if key := fieldKey(w.pkg, x); key != "" {
		onField(key)
		return
	}
	if id, ok := x.(*ast.Ident); ok {
		if obj := w.pkg.Info.Uses[id]; obj != nil {
			onLocal(obj)
		}
	}
}

// isWGDone reports a call to (*sync.WaitGroup).Done.
func (w *hotWalk) isWGDone(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isNamed(w.pkg.Info.TypeOf(sel.X), "sync", "WaitGroup")
}

// isTimeSleep reports a call to time.Sleep.
func (w *hotWalk) isTimeSleep(call *ast.CallExpr) bool {
	fn, _ := calleeObjPkg(w.pkg, call).(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep"
}

// loopWithoutSelect reports a loop ancestor with no select between the loop
// and the current node: the naked-polling shape.
func loopWithoutSelect(stack []ast.Node) bool {
	loop := -1
	for i, anc := range stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = i
		}
	}
	if loop < 0 {
		return false
	}
	for _, anc := range stack[loop:] {
		if _, ok := anc.(*ast.SelectStmt); ok {
			return false
		}
	}
	return true
}

// selectHasReceive reports a select statement with at least one receive arm.
func selectHasReceive(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					return true
				}
			}
		}
	}
	return false
}

// containsSelect reports whether the subtree contains a select statement
// (a `for { select {...} }` service loop has a stop arm, not an unbounded
// spin).
func containsSelect(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.SelectStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
