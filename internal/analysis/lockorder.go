package analysis

// lockorder builds a global lock-acquisition-order graph from the per-function
// lock timelines (lockfacts.go): acquiring B while holding A adds the edge
// A → B, both for direct acquisitions and — through the TransLocks closure —
// for locks taken anywhere below a call made under A. Two goroutines taking
// the same pair of locks in opposite orders deadlock, so any cycle among the
// order edges is a finding. Independently, a lock held across an operation
// that can block without bound — a channel op, a select, an md.Provider
// lookup, a singleflight wait — stalls every other path through that lock and
// is reported directly.

import (
	"go/token"
	"sort"
)

// LockOrder is the global lock-acquisition-order analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the module-wide lock-acquisition-order graph over the call graph " +
		"and report order cycles (deadlock potential) and locks held across " +
		"indefinitely-blocking operations (channel ops, md.Provider lookups, " +
		"singleflight waits)",
	RunModule: runLockOrder,
}

// lockEdgeKey identifies one acquisition-order edge between lock classes.
type lockEdgeKey struct {
	from, to string
}

// lockWitness is the first site at which an order edge was observed.
type lockWitness struct {
	pos token.Pos
	fn  string
	via string // "" for a direct acquisition, the callee key otherwise
}

func runLockOrder(mp *ModulePass) {
	f := mp.Facts
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	edges := make(map[lockEdgeKey]lockWitness)
	addEdge := func(from, to string, w lockWitness) {
		if from == to {
			return // reentrancy on one class is lockcheck's domain
		}
		key := lockEdgeKey{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = w
		}
	}

	// Simulate each function's held set over its source-order lock timeline.
	// Deferred acquires never run mid-body and are skipped; a deferred release
	// keeps its lock held to the end of the function; a non-deferred release
	// pops the most recent matching acquisition (by expression, else class).
	for _, k := range keys {
		ff := f.Funcs[k]
		var held []lockOp
		for _, op := range ff.lockOps {
			switch op.kind {
			case lockOpAcquire:
				if op.deferred {
					continue
				}
				for _, h := range held {
					addEdge(h.class, op.class, lockWitness{pos: op.pos, fn: k})
				}
				held = append(held, op)
			case lockOpRelease:
				if op.deferred {
					continue
				}
				idx := -1
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].expr == op.expr && held[i].mode == op.mode {
						idx = i
						break
					}
				}
				if idx == -1 {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].class == op.class && held[i].mode == op.mode {
							idx = i
							break
						}
					}
				}
				if idx >= 0 {
					held = append(held[:idx], held[idx+1:]...)
				}
			case lockOpBlock:
				if op.deferred || len(held) == 0 {
					continue
				}
				h := held[len(held)-1]
				mp.Reportf(op.pos, "lock %s held across %s: a goroutine blocked here keeps the lock and stalls every other path through it",
					h.class, op.blockKind)
			case lockOpCall:
				if op.deferred || len(held) == 0 {
					continue
				}
				for _, c := range f.transLocksOf(op.callee, op.isIface) {
					for _, h := range held {
						addEdge(h.class, c, lockWitness{pos: op.pos, fn: k, via: op.callee})
					}
				}
			}
		}
	}

	// Any edge inside a strongly-connected component participates in an
	// acquisition-order cycle.
	comp := lockSCC(edges)
	ekeys := make([]lockEdgeKey, 0, len(edges))
	for ek := range edges {
		ekeys = append(ekeys, ek)
	}
	sort.Slice(ekeys, func(i, j int) bool {
		if ekeys[i].from != ekeys[j].from {
			return ekeys[i].from < ekeys[j].from
		}
		return ekeys[i].to < ekeys[j].to
	})
	for _, ek := range ekeys {
		if comp[ek.from] != comp[ek.to] {
			continue
		}
		w := edges[ek]
		if w.via != "" {
			mp.Reportf(w.pos, "lock acquisition order cycle: %s (via call to %s) is acquired while %s is held, and the reverse order exists elsewhere in the module",
				ek.to, w.via, ek.from)
		} else {
			mp.Reportf(w.pos, "lock acquisition order cycle: %s is acquired while %s is held, and the reverse order exists elsewhere in the module",
				ek.to, ek.from)
		}
	}
}

// lockSCC assigns each lock class an SCC id (iterative Tarjan).
func lockSCC(edges map[lockEdgeKey]lockWitness) map[string]int {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for ek := range edges {
		adj[ek.from] = append(adj[ek.from], ek.to)
		nodes[ek.from], nodes[ek.to] = true, true
	}
	order := sortedKeys(nodes)
	for _, n := range order {
		sort.Strings(adj[n])
	}

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	comp := make(map[string]int, len(nodes))
	var stack []string
	next, compID := 0, 0

	type frame struct {
		node string
		edge int
	}
	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.edge < len(adj[fr.node]) {
				child := adj[fr.node][fr.edge]
				fr.edge++
				if _, seen := index[child]; !seen {
					index[child], low[child] = next, next
					next++
					stack = append(stack, child)
					onStack[child] = true
					frames = append(frames, frame{node: child})
				} else if onStack[child] {
					if index[child] < low[fr.node] {
						low[fr.node] = index[child]
					}
				}
				continue
			}
			if low[fr.node] == index[fr.node] {
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					comp[n] = compID
					if n == fr.node {
						break
					}
				}
				compID++
			}
			done := fr.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.node] {
					low[parent.node] = low[done]
				}
			}
		}
	}
	return comp
}
