package analysis

import "testing"

func TestMemoImmut(t *testing.T)    { runFixture(t, MemoImmut, "memoimmut") }
func TestLockCheck(t *testing.T)    { runFixture(t, LockCheck, "lockcheck") }
func TestOpExhaustive(t *testing.T) { runFixture(t, OpExhaustive, "opexhaustive") }
func TestErrDrop(t *testing.T)      { runFixture(t, ErrDrop, "errdrop") }
func TestFaultPoint(t *testing.T)   { runFixture(t, FaultPoint, "faultpoint") }

// TestSuiteCleanOnRepo is the self-hosting check: the analyzer suite must
// report nothing on the module's own packages (after suppressions), which is
// also enforced by check.sh via `go run ./cmd/orcavet ./...`.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestLoaderBasics(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.Load("./internal/gpos")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "orca/internal/gpos" || p.Types == nil || len(p.Files) == 0 {
		t.Fatalf("bad package: %+v", p.PkgPath)
	}
	if p.Types.Scope().Lookup("WorkerPool") == nil {
		t.Fatalf("type information missing WorkerPool")
	}
}
