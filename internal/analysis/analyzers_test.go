package analysis

import (
	"bytes"
	"testing"
)

func TestMemoImmut(t *testing.T)    { runFixture(t, MemoImmut, "memoimmut") }
func TestLockCheck(t *testing.T)    { runFixture(t, LockCheck, "lockcheck") }
func TestOpExhaustive(t *testing.T) { runFixture(t, OpExhaustive, "opexhaustive") }
func TestErrDrop(t *testing.T)      { runFixture(t, ErrDrop, "errdrop") }
func TestFaultPoint(t *testing.T)   { runFixture(t, FaultPoint, "faultpoint") }
func TestAtomicPub(t *testing.T)    { runFixture(t, AtomicPub, "atomicpub") }
func TestHotPath(t *testing.T)      { runFixture(t, HotPath, "hotpath") }
func TestGoLifetime(t *testing.T)   { runFixture(t, GoLifetime, "golifetime") }
func TestPubImmut(t *testing.T)     { runFixture(t, PubImmut, "pubimmut") }

func TestLockOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MDPkgPath = "orcavet.test/lockorder/mdx"
	runFixtureDirs(t, LockOrder, cfg, "lockorder", "mdx", "")
}

func TestRespWrite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServePkgPath = "orcavet.test/respwrite/srv"
	cfg.GPOSPkgPath = "orcavet.test/respwrite/gposx"
	runFixtureDirs(t, RespWrite, cfg, "respwrite", "gposx", "srv")
}

// TestParseHotpath pins the directive grammar corners that cannot carry an
// inline `// want` expectation (the expectation text would become the reason).
func TestParseHotpath(t *testing.T) {
	if _, malformed := parseHotpath(""); malformed == "" {
		t.Errorf("reason-less directive not reported as malformed")
	}
	allow, malformed := parseHotpath(":alloc,lock amortized and pinned")
	if malformed != "" || len(allow) != 2 || !allow[HotAlloc] || !allow[HotLock] {
		t.Errorf("allowance list mis-parsed: allow=%v malformed=%q", allow, malformed)
	}
	if _, malformed := parseHotpath(":concat because"); malformed == "" {
		t.Errorf("concat allowance accepted; fmt/concat must never be waivable")
	}
	if _, malformed := parseHotpath(":bogus because"); malformed == "" {
		t.Errorf("unknown allowance accepted")
	}
}

func TestCtxFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MDPkgPath = "orcavet.test/ctxflow/mdx"
	runFixtureDirs(t, CtxFlow, cfg, "ctxflow", "mdx", "client")
}

func TestOpClosure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpsPkgPath = "orcavet.test/opclosure/ops"
	cfg.XformPkgPath = "orcavet.test/opclosure/legs"
	cfg.StatsPkgPath = "orcavet.test/opclosure/legs"
	cfg.CostPkgPath = "orcavet.test/opclosure/legs"
	cfg.EnginePkgPath = "orcavet.test/opclosure/legs"
	cfg.DXLPkgPath = "orcavet.test/opclosure/legs"
	runFixtureDirs(t, OpClosure, cfg, "opclosure", "ops", "legs")
}

// TestIgnoreDirectives exercises the scoped suppression machinery: a scoped
// directive consumes a matching finding, and (with ReportUnusedIgnores on)
// malformed or matching-nothing directives are themselves findings.
func TestIgnoreDirectives(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportUnusedIgnores = true
	runFixtureDirs(t, AtomicPub, cfg, "ignores", "")
}

// TestSuiteCleanOnRepo is the self-hosting check: the analyzer suite must
// report nothing on the module's own packages (after suppressions), which is
// also enforced by check.sh via `go run ./cmd/orcavet ./...`. The suite runs
// as one module-wide pass — opclosure and ctxflow are interprocedural and see
// nothing useful package-by-package — with unused-ignore reporting on, so a
// stale waiver fails this test too.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	cfg := DefaultConfig()
	cfg.ReportUnusedIgnores = true
	for _, d := range RunModule(pkgs, All(), cfg) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestFactsDeterministic computes module facts twice with the package list
// reversed and demands byte-identical exports: analyzer output (and hence the
// SARIF baseline) must not depend on load order.
func TestFactsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	cfg := DefaultConfig()
	fwd, err := ComputeFacts(pkgs, cfg).Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	rev := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		rev[len(pkgs)-1-i] = p
	}
	bwd, err := ComputeFacts(rev, cfg).Export()
	if err != nil {
		t.Fatalf("export (reversed): %v", err)
	}
	if !bytes.Equal(fwd, bwd) {
		t.Fatalf("facts export depends on package order:\nforward  %d bytes\nreversed %d bytes", len(fwd), len(bwd))
	}
}

// BenchmarkOrcavet measures a full-suite module pass (excluding the one-time
// load and type-check, which the loader caches) — the number check.sh's
// sixty-second budget rides on.
func BenchmarkOrcavet(b *testing.B) {
	l, err := NewLoader("")
	if err != nil {
		b.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	cfg := DefaultConfig()
	cfg.ReportUnusedIgnores = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := RunModule(pkgs, All(), cfg); len(diags) != 0 {
			b.Fatalf("suite not clean: %d findings", len(diags))
		}
	}
}

func TestLoaderBasics(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.Load("./internal/gpos")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "orca/internal/gpos" || p.Types == nil || len(p.Files) == 0 {
		t.Fatalf("bad package: %+v", p.PkgPath)
	}
	if p.Types.Scope().Lookup("WorkerPool") == nil {
		t.Fatalf("type information missing WorkerPool")
	}
}
