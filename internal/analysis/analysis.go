// Package analysis implements orcavet, a static-analysis suite enforcing
// optimizer invariants the Go compiler cannot check: Memo immutability,
// scheduler lock/condvar discipline, exhaustive operator-kind handling, and
// non-discarded errors from the GPOS/DXL layers. The suite is built directly
// on the stdlib go/ast + go/types packages (no external dependencies); the
// loader shells out to `go list -export` for package metadata and export
// data, mirroring how the go vet driver loads packages.
//
// Analyzers report Diagnostics through a Pass, the per-package unit of work.
// A diagnostic can be suppressed with a `//orcavet:ignore <reason>` comment
// on the same line (or on the line above, when the comment stands alone);
// see Suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check run over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("memoimmut", ...).
	Name string
	// Doc is a one-paragraph description shown by `orcavet -help`.
	Doc string
	// Run reports the analyzer's findings on one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by the identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Run applies the analyzers to pkg and returns their findings, with
// suppressed diagnostics filtered out, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !pkg.Suppressed(d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// All returns the orcavet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{MemoImmut, LockCheck, OpExhaustive, ErrDrop, FaultPoint}
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers

// walkStack traverses every file of the pass's package keeping an ancestor
// stack. fn is called pre-order; returning false prunes the subtree. The
// stack excludes n itself; stack[len-1] is n's parent.
func (p *Pass) walkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			if ok {
				stack = append(stack, n)
			}
			return ok
		})
	}
}

// namedType returns the named type of t after stripping pointers and
// aliases, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeObj resolves the called function or method object of a call, or nil
// (e.g. for calls through function-typed variables or conversions).
func (p *Pass) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := p.Pkg.Info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.F(...).
		if o := p.Pkg.Info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// enclosingFunc returns the innermost function declaration or literal in the
// ancestor stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
