// Package analysis implements orcavet, a static-analysis suite enforcing
// optimizer invariants the Go compiler cannot check: Memo immutability,
// scheduler lock/condvar discipline, exhaustive operator-kind handling,
// non-discarded errors from the GPOS/DXL layers, sync/atomic publication
// discipline, context propagation through request paths, cross-package
// closure of the operator registries, global lock-acquisition ordering,
// immutability of objects past their publication point, and exactly-once
// response commit in the serving tier. The suite is built directly on the
// stdlib go/ast + go/types packages (no external dependencies); the loader
// shells out to `go list -export` for package metadata and export data,
// mirroring how the go vet driver loads packages.
//
// Analyzers come in two shapes. Per-package analyzers (Run) see one
// type-checked package at a time. Module analyzers (RunModule) see every
// loaded package at once plus the shared Facts store — per-function
// interprocedural summaries ("drops its ctx", "carries a gpos/dxl error",
// "locks its receiver's mutex") computed once per run and also consulted by
// the per-package analyzers to reason across function boundaries.
//
// A diagnostic can be suppressed with a scoped
// `//orcavet:ignore:<analyzer> <reason>` comment on the same line (or on the
// line above, when the comment stands alone); unused directives are
// themselves reported so waivers cannot outlive their findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant check. Exactly one of Run (per-package)
// and RunModule (whole-module) is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("memoimmut", ...).
	Name string
	// Doc is a one-paragraph description shown by `orcavet -help`.
	Doc string
	// Run reports the analyzer's findings on one package.
	Run func(*Pass)
	// RunModule reports findings over all loaded packages at once, for
	// checks that are inherently cross-package (operator-registry closure,
	// call-graph reachability).
	RunModule func(*ModulePass)
}

// Config points the interprocedural analyzers at the packages playing each
// architectural role. The zero value is unusable; use DefaultConfig. Tests
// substitute fixture package paths.
type Config struct {
	// OpsPkgPath hosts the operator inventory (the Logical / Physical /
	// Enforcer / ScalarExpr interfaces and their implementations).
	OpsPkgPath string
	// Consumer packages whose references establish opclosure legs.
	XformPkgPath  string
	StatsPkgPath  string
	CostPkgPath   string
	EnginePkgPath string
	DXLPkgPath    string
	// MDPkgPath hosts the Provider interface and the Accessor timeout layer.
	MDPkgPath string
	// ServePkgPath hosts the HTTP serving tier whose handler functions
	// respwrite holds to the exactly-once response-commit contract.
	ServePkgPath string
	// GPOSPkgPath hosts Raise/Wrap, the exception constructors whose
	// component/code pairs respwrite cross-checks against the serve error
	// taxonomy.
	GPOSPkgPath string
	// RootPkgPaths are the packages whose exported functions are optimizer
	// entry points; ctxflow reachability starts there. Fixture packages
	// (orcavet.test/...) are always treated as roots.
	RootPkgPaths []string
	// ReportUnusedIgnores adds "ignore" diagnostics for //orcavet:ignore
	// directives that suppressed nothing. Enabled for full-suite runs; off
	// for single-analyzer fixture runs, where directives scoped to other
	// analyzers are legitimately idle.
	ReportUnusedIgnores bool
	// DefsDir points at the defs/*.opt operator/rule declarations; when set
	// (and the directory exists), opclosure cross-checks the declarations
	// against the Go inventory and the hand-written rule legs, reporting at
	// .opt positions. Empty disables the cross-check (fixture runs).
	DefsDir string
}

// DefaultConfig returns the configuration matching the repo's layout.
func DefaultConfig() *Config {
	return &Config{
		OpsPkgPath:    opsPkgPath,
		XformPkgPath:  "orca/internal/xform",
		StatsPkgPath:  "orca/internal/stats",
		CostPkgPath:   "orca/internal/cost",
		EnginePkgPath: "orca/internal/engine",
		DXLPkgPath:    dxlPkgPath,
		MDPkgPath:     mdPkgPath,
		ServePkgPath:  "orca/internal/serve",
		GPOSPkgPath:   gposPkgPath,
		RootPkgPaths:  []string{mdPkgPath, "orca/internal/core", searchPkgPath, gposPkgPath, "orca/internal/serve", "orca/internal/plancache"},
		DefsDir:       "defs",
	}
}

// fixturePkgPrefix marks testdata fixture packages, which are self-rooted:
// their exported functions count as entry points without configuration.
const fixturePkgPrefix = "orcavet.test/"

// isRootPkg reports whether pkgPath's exported functions are entry points.
func (c *Config) isRootPkg(pkgPath string) bool {
	if strings.HasPrefix(pkgPath, fixturePkgPrefix) {
		return true
	}
	for _, p := range c.RootPkgPaths {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through a per-package analyzer,
// together with the module-wide facts when the driver computed them.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts
	Config   *Config

	diags *[]Diagnostic
}

// ModulePass carries every loaded package through a module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Facts    *Facts
	Config   *Config
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a module-analyzer finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      mp.Fset.Position(pos),
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPosf records a module-analyzer finding at an explicit file position —
// used for findings anchored outside Go sources (the defs/*.opt files).
func (mp *ModulePass) ReportPosf(pos token.Position, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by the identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Run applies the analyzers to one package with a default configuration.
// Fixture tests and single-package callers use it; whole-module runs go
// through RunModule so cross-package facts see every function.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunModule([]*Package{pkg}, analyzers, nil)
}

// AnalyzerStats records one analyzer's contribution to a module pass: its
// post-suppression finding count and the wall-clock time of its run. The
// pseudo-entry "facts" carries the one-time interprocedural facts
// computation shared by the whole suite.
type AnalyzerStats struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	WallMS   float64 `json:"wall_ms"`
}

// RunModule applies the analyzers to the loaded packages and returns their
// findings: facts are computed once over all packages, per-package analyzers
// run on each package, module analyzers run once, suppressed diagnostics are
// filtered out (marking their directives used), and — when the config asks —
// unused directives are reported. The result is sorted by position.
func RunModule(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	diags, _ := RunModuleTimed(pkgs, analyzers, cfg)
	return diags
}

// RunModuleTimed is RunModule plus per-analyzer statistics, in run order
// with the shared facts computation first. Finding counts are taken after
// suppression and sorting, so they match what the caller reports.
func RunModuleTimed(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, []AnalyzerStats) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	stats := make([]AnalyzerStats, 0, len(analyzers)+1)
	factsStart := time.Now()
	facts := ComputeFacts(pkgs, cfg)
	stats = append(stats, AnalyzerStats{Name: "facts", WallMS: wallMS(factsStart)})
	var diags []Diagnostic
	for _, a := range analyzers {
		start := time.Now()
		if a.RunModule != nil {
			mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Facts: facts, Config: cfg, diags: &diags}
			if len(pkgs) > 0 {
				mp.Fset = pkgs[0].Fset
			}
			a.RunModule(mp)
		} else {
			for _, pkg := range pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, Config: cfg, diags: &diags}
				a.Run(pass)
			}
		}
		stats = append(stats, AnalyzerStats{Name: a.Name, WallMS: wallMS(start)})
	}
	byFile := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		owner := byFile[d.Pos.Filename]
		if owner == nil || !owner.suppress(d) {
			kept = append(kept, d)
		}
	}
	if cfg.ReportUnusedIgnores {
		kept = append(kept, unusedIgnores(pkgs)...)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	counts := make(map[string]int, len(kept))
	for _, d := range kept {
		counts[d.Analyzer]++
	}
	for i := range stats {
		stats[i].Findings = counts[stats[i].Name]
	}
	return kept, stats
}

// wallMS returns the elapsed time since start in milliseconds.
func wallMS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// All returns the orcavet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		MemoImmut, LockCheck, OpExhaustive, ErrDrop, FaultPoint,
		AtomicPub, CtxFlow, OpClosure, HotPath, GoLifetime,
		LockOrder, PubImmut, RespWrite,
	}
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers

// walkStack traverses every file of the pass's package keeping an ancestor
// stack. fn is called pre-order; returning false prunes the subtree. The
// stack excludes n itself; stack[len-1] is n's parent.
func (p *Pass) walkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			if ok {
				stack = append(stack, n)
			}
			return ok
		})
	}
}

// namedType returns the named type of t after stripping pointers and
// aliases, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeObj resolves the called function or method object of a call, or nil
// (e.g. for calls through function-typed variables or conversions).
func (p *Pass) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := p.Pkg.Info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.F(...).
		if o := p.Pkg.Info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// enclosingFunc returns the innermost function declaration or literal in the
// ancestor stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
