package analysis

import (
	"sort"
	"strings"
)

// CtxFlow tracks context.Context through the call chains rooted at the
// optimizer's entry points (the exported functions of internal/md,
// internal/core and internal/search), guarding the paper-§6.1 guarantee that
// every metadata lookup runs under the session's per-lookup deadline:
//
//  1. A named context parameter that the body never uses is a dropped
//     context — cancellation and deadlines silently stop propagating.
//  2. context.Background() / context.TODO() inside a function reachable
//     from an entry point (but not an entry point itself) detaches the
//     request path from the session context. Entry points may mint the
//     root context; interior functions must thread the one they were given.
//  3. Calls through the md.Provider interface are how lookups escape to a
//     possibly-slow backend. Outside internal/md they bypass the Accessor's
//     timeout layer entirely; inside internal/md they are only safe under
//     timedLookup, which enforces the deadline and abandons hung providers.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags dropped ctx parameters, context.Background()/TODO() inside " +
		"request paths, and metadata provider calls that bypass the " +
		"Accessor's per-lookup timeout",
	RunModule: runCtxFlow,
}

func runCtxFlow(mp *ModulePass) {
	facts := mp.Facts
	for _, key := range factKeys(facts) {
		ff := facts.Funcs[key]
		if ff.CtxParam != "" && !ff.UsesCtx {
			mp.Reportf(ff.ctxParamPos,
				"ctx parameter %q is dropped: the context never reaches the body's calls", ff.CtxParam)
		}
		if facts.Reachable[key] && !facts.Roots[key] {
			for _, pos := range ff.backgrounds {
				mp.Reportf(pos,
					"context.Background/TODO inside a request path (%s is reachable from optimizer entry points); thread the caller's ctx instead",
					shortKey(key))
			}
		}
		for _, pos := range ff.provCalls {
			switch {
			case ff.PkgPath == mp.Config.MDPkgPath:
				if !callsTimedLookup(ff, mp.Config.MDPkgPath) {
					mp.Reportf(pos,
						"md.Provider call outside timedLookup: provider lookups inside %s must run under the per-lookup timeout", mp.Config.MDPkgPath)
				}
			case facts.Reachable[key]:
				mp.Reportf(pos,
					"md.Provider call in %s bypasses the Accessor timeout layer; go through md.Accessor so the per-lookup deadline applies",
					shortKey(key))
			}
		}
	}
}

// callsTimedLookup reports whether the function (closures folded in) invokes
// the md package's timedLookup deadline wrapper.
func callsTimedLookup(ff *FuncFacts, mdPath string) bool {
	for _, c := range ff.Calls {
		if c == mdPath+".timedLookup" {
			return true
		}
	}
	return false
}

// factKeys returns the function keys in deterministic order.
func factKeys(f *Facts) []string {
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shortKey trims the module path prefix for readable diagnostics.
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
