package analysis

// respwrite holds the serving tier to an exactly-once response contract.
// Every function taking an http.ResponseWriter is rescanned with the commit
// tracker from respfacts.go, reporting double commits (a WriteHeader or
// taxonomy write after the status is already out) and body writes on paths
// where another branch may already have finished the response. Handler roots
// — (http.ResponseWriter, *http.Request) functions in the serve package —
// additionally must commit on every path: a naked return or a fall-through
// to the end of the body without a status write serves an implicit 200 with
// no taxonomy payload. Finally, the gpos.Exception component/code pairs
// reachable from handlers are cross-checked against the JSON error taxonomy:
// every code a handler can surface must be mapped (or the taxonomy must carry
// a generic code passthrough), so no exception reaches a client unnamed.

import (
	"go/ast"
	"sort"
)

// RespWrite is the handler response-lifecycle analyzer.
var RespWrite = &Analyzer{
	Name: "respwrite",
	Doc: "enforce exactly-once response commit in serve handlers (no double " +
		"WriteHeader, no write after a committed branch, no return without an " +
		"error-taxonomy write) and cross-check that every gpos exception code " +
		"reachable from handlers maps into the JSON error taxonomy",
	RunModule: runRespWrite,
}

func runRespWrite(mp *ModulePass) {
	f := mp.Facts
	keys := make([]string, 0, len(f.respFns))
	for k := range f.respFns {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var handlers []string
	for _, k := range keys {
		rf := f.respFns[k]
		sc := &respScan{pkg: rf.pkg, facts: f, report: mp.Reportf}
		out, terminated := sc.scanStmts(rf.fd.Body.List, respNo)
		if !rf.handler {
			continue
		}
		handlers = append(handlers, k)
		for _, r := range sc.returns {
			switch r.state {
			case respNo:
				mp.Reportf(r.pos, "handler returns without committing a response: no status or error-taxonomy write happens on this path")
			case respMaybe:
				mp.Reportf(r.pos, "handler may return without committing a response on some path through this return")
			}
		}
		if !terminated {
			switch out {
			case respNo:
				mp.Reportf(rf.fd.Body.Rbrace, "handler reaches the end of its body without committing a response: no status or error-taxonomy write happens on this path")
			case respMaybe:
				mp.Reportf(rf.fd.Body.Rbrace, "handler may reach the end of its body without committing a response on some path")
			}
		}
	}
	if len(handlers) == 0 {
		return
	}
	checkTaxonomy(mp, handlers)
}

// checkTaxonomy verifies that every constant gpos.Raise/Wrap code reachable
// from the handler roots is representable in the serve error taxonomy. A
// generic passthrough — an APIError built with `Code: ex.Code` from an
// Exception — covers every code at once; otherwise each code must appear in
// an APIError literal, a comparison, or a switch over an Exception code.
func checkTaxonomy(mp *ModulePass, handlers []string) {
	mapped, passthrough := collectTaxonomy(mp)
	if passthrough {
		return
	}
	f := mp.Facts
	reach := make(map[string]bool)
	queue := append([]string(nil), handlers...)
	for _, k := range queue {
		reach[k] = true
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		ff := f.Funcs[k]
		if ff == nil {
			continue
		}
		visit := func(callee string) {
			if !reach[callee] {
				reach[callee] = true
				queue = append(queue, callee)
			}
		}
		for _, c := range ff.Calls {
			visit(c)
		}
		for _, ic := range ff.IfaceCalls {
			for _, impl := range f.IfaceImpls[ic] {
				visit(impl)
			}
		}
	}
	for _, k := range sortedKeys(reach) {
		ff := f.Funcs[k]
		if ff == nil {
			continue
		}
		for _, r := range ff.raises {
			if r.code == "" || mapped[r.code] {
				continue // non-constant codes cannot be checked statically
			}
			mp.Reportf(r.pos, "gpos exception %s/%s is reachable from serve handlers but has no mapping in the JSON error taxonomy: clients would see it unnamed",
				r.comp, r.code)
		}
	}
}

// collectTaxonomy scans the serve-tier packages for the codes the error
// taxonomy can express.
func collectTaxonomy(mp *ModulePass) (mapped map[string]bool, passthrough bool) {
	mapped = make(map[string]bool)
	cfg := mp.Config
	isExceptionCode := func(pkg *Package, e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Code" {
			return false
		}
		return isNamed(pkg.Info.TypeOf(sel.X), cfg.GPOSPkgPath, "Exception")
	}
	for _, pkg := range mp.Pkgs {
		if !isServePkg(cfg, pkg.PkgPath) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					named := namedType(pkg.Info.TypeOf(n))
					if named == nil || named.Obj().Name() != "APIError" {
						return true
					}
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok || key.Name != "Code" {
							continue
						}
						if code := constString(pkg, kv.Value); code != "" {
							mapped[code] = true
						} else if isExceptionCode(pkg, kv.Value) {
							passthrough = true
						}
					}
				case *ast.BinaryExpr:
					if code := constString(pkg, n.Y); code != "" && isExceptionCode(pkg, n.X) {
						mapped[code] = true
					}
					if code := constString(pkg, n.X); code != "" && isExceptionCode(pkg, n.Y) {
						mapped[code] = true
					}
				case *ast.SwitchStmt:
					if n.Tag == nil || !isExceptionCode(pkg, n.Tag) {
						return true
					}
					for _, cl := range n.Body.List {
						cc, ok := cl.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							if code := constString(pkg, e); code != "" {
								mapped[code] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return mapped, passthrough
}
