package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FaultPoint enforces the fault-injection framework's central-table contract
// (paper §6.1): every fault point is declared once as a Point* constant with
// a unique name, every constant appears in the fault package's Registered
// table, and every Inject call site names its point through one of those
// constants rather than an ad-hoc string literal. Without this, a typo at an
// instrumentation site silently creates a point that no schedule can ever
// arm — the fault path looks covered but never fires.
var FaultPoint = &Analyzer{
	Name: "faultpoint",
	Doc: "flags fault.Inject calls whose point argument is not a Point* " +
		"constant from the fault package's central table, Point constants " +
		"missing from the Registered table or sharing a name with another, " +
		"and Registered keys that do not reference a Point constant",
	Run: runFaultPoint,
}

func runFaultPoint(p *Pass) {
	checkPointTable(p)
	if p.Pkg.Types.Path() == faultPkgPath {
		// The framework's own plumbing (the Inject wrapper, Arm validation)
		// passes point names through variables by design.
		return
	}
	p.walkStack(func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := p.calleeObj(call).(*types.Func)
		if fn == nil || fn.Name() != "Inject" || fn.Pkg() == nil ||
			fn.Pkg().Path() != faultPkgPath || len(call.Args) == 0 {
			return true
		}
		checkInjectArg(p, call.Args[0])
		return true
	})
}

// checkInjectArg requires the point argument of an Inject call to be a
// reference to a Point* constant declared in the fault package.
func checkInjectArg(p *Pass, arg ast.Expr) {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		p.Reportf(arg.Pos(), "fault point named by a raw string literal %s; use a fault.Point* constant from the central table", lit.Value)
		return
	}
	if c := p.pointConst(arg); c != nil {
		if c.Pkg() != nil && c.Pkg().Path() == faultPkgPath {
			return
		}
		p.Reportf(arg.Pos(), "fault point constant %s is not declared in the fault package's central table", c.Name())
		return
	}
	p.Reportf(arg.Pos(), "fault point must be a fault.Point* constant, not a dynamic expression")
}

// pointConst resolves e to a declared string constant named Point*, or nil.
func (p *Pass) pointConst(e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := p.ObjectOf(id).(*types.Const)
	if c == nil || !strings.HasPrefix(c.Name(), "Point") {
		return nil
	}
	if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return nil
	}
	return c
}

// checkPointTable runs the declaration-side checks on any package that
// declares a `Registered map[string]string` table (the fault package, and
// fixtures mimicking it): Point* constant values must be unique, every
// constant must be a key of the table, and every key must reference a
// constant.
func checkPointTable(p *Pass) {
	table := findRegisteredTable(p)
	if table == nil {
		return
	}
	type pointDecl struct {
		id  *ast.Ident
		val string
	}
	var points []pointDecl
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, _ := p.Pkg.Info.Defs[name].(*types.Const)
					if c == nil || !strings.HasPrefix(c.Name(), "Point") ||
						c.Val().Kind() != constant.String {
						continue
					}
					points = append(points, pointDecl{id: name, val: constant.StringVal(c.Val())})
				}
			}
		}
	}

	seen := make(map[string]*ast.Ident)
	for _, pt := range points {
		if prev, ok := seen[pt.val]; ok {
			p.Reportf(pt.id.Pos(), "fault point %s duplicates the name %q of %s; point names must be unique", pt.id.Name, pt.val, prev.Name)
			continue
		}
		seen[pt.val] = pt.id
	}

	registered := make(map[string]bool)
	for _, el := range table.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if tv, ok := p.Pkg.Info.Types[kv.Key]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			registered[constant.StringVal(tv.Value)] = true
		}
		if p.pointConst(kv.Key) == nil {
			p.Reportf(kv.Key.Pos(), "Registered key does not reference a Point constant; declare the point in the central const block")
		}
	}

	for _, pt := range points {
		if !registered[pt.val] {
			p.Reportf(pt.id.Pos(), "fault point %s (%q) is missing from the Registered table", pt.id.Name, pt.val)
		}
	}
}

// findRegisteredTable returns the composite literal initializing a
// package-level `Registered map[string]string` variable, or nil.
func findRegisteredTable(p *Pass) *ast.CompositeLit {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "Registered" || i >= len(vs.Values) {
						continue
					}
					v, _ := p.Pkg.Info.Defs[name].(*types.Var)
					if v == nil || !isStringMap(v.Type()) {
						continue
					}
					if cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// isStringMap reports whether t is (an alias of) map[string]string.
func isStringMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	return isStr(m.Key()) && isStr(m.Elem())
}
