package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file renders findings for CI consumption (JSON and SARIF 2.1.0) and
// implements the reviewed-baseline workflow: a committed baseline file lists
// accepted findings so the gate fails only on *new* ones. Baseline entries
// are line-independent — keyed by (analyzer, file, message) as a multiset —
// so unrelated edits that shift line numbers do not invalidate the review.

// JSONDiagnostic is the stable JSON shape of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// MarshalJSONDiagnostics renders findings as a JSON array, file paths
// relative to root when possible.
func MarshalJSONDiagnostics(diags []Diagnostic, root string) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// sarifLog is the minimal SARIF 2.1.0 document CI systems ingest.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription map[string]string `json:"shortDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string            `json:"ruleId"`
	Level     string            `json:"level"`
	Message   map[string]string `json:"message"`
	Locations []sarifLocation   `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// MarshalSARIF renders findings as a SARIF 2.1.0 log. The rule list covers
// the analyzers in the suite plus any analyzer that actually reported, so
// every result has a declared rule.
func MarshalSARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	ruleSet := make(map[string]string)
	for _, a := range analyzers {
		ruleSet[a.Name] = a.Doc
	}
	for _, d := range diags {
		if _, ok := ruleSet[d.Analyzer]; !ok {
			ruleSet[d.Analyzer] = ""
		}
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "orcavet"}},
		Results: []sarifResult{},
	}
	for _, id := range ids {
		r := sarifRule{ID: id}
		if doc := ruleSet[id]; doc != "" {
			r.ShortDescription = map[string]string{"text": doc}
		}
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, r)
	}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: map[string]string{"text": d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(root, d.Pos.Filename))},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	return json.MarshalIndent(log, "", "  ")
}

// BaselineEntry identifies one accepted finding, line-independent.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the reviewed set of accepted findings, a multiset of entries.
type Baseline struct {
	// Comment documents the review provenance of the accepted findings.
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteBaseline renders the current findings as a baseline file.
func WriteBaseline(path string, diags []Diagnostic, root string) error {
	b := &Baseline{
		Comment: "reviewed orcavet findings accepted as-is; regenerate with: go run ./cmd/orcavet -write-baseline " + filepath.Base(path) + " ./...",
		Entries: []BaselineEntry{},
	}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(relPath(root, d.Pos.Filename)),
			Message:  d.Message,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the findings not covered by the baseline, plus the stale
// baseline entries that matched no finding. Matching is a multiset
// subtraction: two identical findings need two baseline entries, and two
// identical entries with only one live finding leave one stale. Stale entries
// mean the accepted debt was paid down without the ledger shrinking — the
// caller should fail the run so the baseline cannot silently re-waive a
// future regression at the same site.
func (b *Baseline) Filter(diags []Diagnostic, root string) (remaining []Diagnostic, stale []BaselineEntry) {
	budget := make(map[BaselineEntry]int)
	norm := make([]BaselineEntry, len(b.Entries))
	for i, e := range b.Entries {
		e.File = filepath.ToSlash(e.File)
		norm[i] = e
		budget[e]++
	}
	for _, d := range diags {
		key := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(relPath(root, d.Pos.Filename)),
			Message:  d.Message,
		}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		remaining = append(remaining, d)
	}
	for _, e := range norm {
		if budget[e] > 0 {
			budget[e]--
			stale = append(stale, e)
		}
	}
	return remaining, stale
}

// relPath renders name relative to root when it is inside it.
func relPath(root, name string) string {
	if root == "" {
		return name
	}
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
