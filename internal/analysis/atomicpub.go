package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPub enforces the module's sync/atomic discipline, the invariant the
// lock-free Memo hot paths (DESIGN.md §11) rely on:
//
//  1. A struct field accessed through an old-style sync/atomic function
//     (atomic.LoadInt64(&x.f), ...) anywhere in the module must be accessed
//     that way everywhere: a plain read or write of the same field races
//     with the atomic accessors.
//  2. A field of a declared atomic type (atomic.Int64, atomic.Pointer[T],
//     ...) may only be used as a method receiver or have its address taken;
//     copying or reassigning the value bypasses the atomic state.
//  3. Safe publication: after a function performs an atomic Store / Swap /
//     CompareAndSwap, it must not write plain fields of any object other
//     goroutines can already reach (parameters, receivers, captured or
//     escaped values). All wiring must dominate the store — publishing a
//     group pointer before its seed expression is set ("publish-then-wire")
//     is exactly the bug class this catches.
//
// The rules are deliberately shaped around the Memo's verified patterns:
// index writes (chunks[i][j] = g, stripe.table[fp] = ge) are exempt because
// the published directory makes slots visible only through a later atomic
// counter store, and a fresh local that has not escaped may be wired freely
// after unrelated stores.
var AtomicPub = &Analyzer{
	Name: "atomicpub",
	Doc: "flags plain access to fields used via sync/atomic, copies of " +
		"atomic-typed fields, and plain writes to escaped objects after an " +
		"atomic publication (publish-then-wire ordering bugs)",
	RunModule: runAtomicPub,
}

func runAtomicPub(mp *ModulePass) {
	for _, pkg := range mp.Pkgs {
		checkAtomicAccess(mp, pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkPublication(mp, pkg, fd)
				}
			}
		}
	}
}

// checkAtomicAccess enforces rules 1 and 2 over one package's selector uses.
func checkAtomicAccess(mp *ModulePass, pkg *Package) {
	var stack []ast.Node
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && len(stack) > 0 {
				checkSelectorUse(mp, pkg, sel, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
}

func checkSelectorUse(mp *ModulePass, pkg *Package, sel *ast.SelectorExpr, stack []ast.Node) {
	key := fieldKey(pkg, sel)
	if key == "" {
		return
	}
	kind, ok := mp.Facts.AtomicFields[key]
	if !ok {
		return
	}
	parent := stack[len(stack)-1]
	switch kind {
	case "oldstyle":
		// The only sanctioned use is &x.f fed to a sync/atomic function.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && isOldStyleAtomicCall(pkg, call) {
					return
				}
			}
		}
		mp.Reportf(sel.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere; use the atomic accessors", key)
	case "declared":
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			return // x.f.Load(): method access through the field
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return // &x.f: passing a pointer to the atomic is fine
			}
		}
		mp.Reportf(sel.Pos(), "atomic-typed field %s copied or reassigned without sync/atomic; use its Load/Store methods", key)
	}
}

// checkPublication enforces rule 3 on one function body. Escape analysis is
// a straight-line approximation over source order: parameters, receivers and
// non-local variables are escaped at entry; a local born from &T{…}, new(T)
// or a composite literal stays private until it leaves the function's hands
// (used outside a field selection on itself), which includes appearing in
// the arguments of the atomic store itself.
func checkPublication(mp *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	type event struct {
		pos token.Pos
	}
	var firstStore event
	fresh := make(map[types.Object]bool)        // locals still private
	escaped := make(map[types.Object]token.Pos) // local -> escape position

	// Seed fresh locals: v := &T{...} | new(T) | T{...}.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if isFreshAlloc(pkg, as.Rhs[i]) {
				if obj := pkg.Info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})

	// Walk in source order tracking escapes and the first atomic store.
	var stack []ast.Node
	var writes []*ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAtomicStoreCall(pkg, n) && (firstStore.pos == token.NoPos || n.Pos() < firstStore.pos) {
				firstStore = event{n.Pos()}
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[n]
			if obj != nil && fresh[obj] {
				if _, done := escaped[obj]; !done && escapesHere(stack, n) {
					escaped[obj] = n.Pos()
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				writes = append(writes, n)
			}
		}
		stack = append(stack, n)
		return true
	})
	if firstStore.pos == token.NoPos {
		return
	}

	for _, as := range writes {
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Pos() <= firstStore.pos {
				continue
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				continue // index writes and deep chains are directory-slot patterns
			}
			if isAtomicType(pkg.Info.TypeOf(sel)) {
				continue // rule 2 reports atomic-typed reassignment
			}
			obj := pkg.Info.Uses[base]
			if obj == nil {
				continue
			}
			if fresh[obj] {
				esc, did := escaped[obj]
				if !did || esc > sel.Pos() {
					continue // still private: wiring a local is safe
				}
			}
			mp.Reportf(sel.Pos(),
				"plain write to %s.%s after atomic publication at line %d; writes to shared state must precede the store that publishes them",
				base.Name, sel.Sel.Name, pkg.Fset.Position(firstStore.pos).Line)
		}
	}
}

// isFreshAlloc reports an allocation whose result no other goroutine can see
// yet: &T{...}, new(T), or a composite literal value.
func isFreshAlloc(pkg *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new" && pkg.Info.Uses[id] == types.Universe.Lookup("new")
	}
	return false
}

// isAtomicStoreCall reports a publication point: a Store/Swap/CompareAndSwap
// method on a sync/atomic value, or the old-style function equivalents.
func isAtomicStoreCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
		return isAtomicType(pkg.Info.TypeOf(sel.X))
	}
	if fn, _ := calleeObjPkg(pkg, call).(*types.Func); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "sync/atomic" {
		name := fn.Name()
		return hasPrefixAny(name, "Store", "Swap", "CompareAndSwap")
	}
	return false
}

func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// escapesHere reports whether this use of a fresh local hands it to code
// that may retain it: anything except selecting a field on it (v.f, whether
// read, written, or used as an atomic method receiver) or being the LHS of
// its own definition.
func escapesHere(stack []ast.Node, id *ast.Ident) bool {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return ast.Unparen(p.X) != ast.Expr(id) && p.X != ast.Expr(id)
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) && p.Tok == token.DEFINE {
				return false
			}
		}
		return true
	}
	return true
}
