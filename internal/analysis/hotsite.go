package analysis

// Hot-site classification and spawn-site recording for the hot/lifetime
// walk (see hotwalk.go for the traversal and hotfacts.go for the model).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotSite classifies one warm node as a latency hazard, if it is one.
func (w *hotWalk) hotSite(n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		w.hotCall(n, stack)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && w.isStringExpr(n) && !w.isConst(n) {
			w.site(n.Pos(), HotConcat, "string concatenation")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && w.isStringExpr(n.Lhs[0]) {
			w.site(n.Pos(), HotConcat, "string concatenation (+=)")
		}
	case *ast.DeferStmt:
		if hasLoopAncestor(stack) {
			w.site(n.Pos(), HotDefer, "defer inside a loop (runs at function return, accumulates)")
		}
	case *ast.RangeStmt:
		w.hotMapRange(n)
	case *ast.FuncLit:
		w.hotClosure(n, stack)
	case *ast.UnaryExpr:
		if n.Op == token.AND && !w.trackedRHS[n] {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.site(n.Pos(), HotAlloc, "heap allocation: "+types.ExprString(n))
			}
		}
	case *ast.CompositeLit:
		w.hotComposite(n, stack)
	}
}

// hotCall classifies calls: fmt, unblessed locks, boxing, warm edges, and
// the untracked make/new allocations.
func (w *hotWalk) hotCall(call *ast.CallExpr, stack []ast.Node) {
	if w.hotBuiltinAlloc(call) {
		return
	}
	// Interface dispatch: record the warm interface edge; boxing of the
	// arguments is checked below like any other call.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			if id := ifaceMethodID(s.Recv(), sel.Sel.Name); id != "" {
				w.warmIface[id] = true
			}
		}
	}
	if fn, _ := calleeObjPkg(w.pkg, call).(*types.Func); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			w.site(call.Pos(), HotFmt, "call to fmt."+fn.Name())
		}
		// A `go f()` statement hands f to another goroutine; f's body is not
		// on this function's latency path.
		if len(stack) == 0 || !isGoStmt(stack[len(stack)-1]) {
			w.warm[fn.FullName()] = true
		}
	}
	w.hotLock(call)
	w.hotBoxing(call)
}

func isGoStmt(n ast.Node) bool { _, ok := n.(*ast.GoStmt); return ok }

// hotBuiltinAlloc flags make/new allocations that are not escape-tracked:
// map and channel makes always allocate; slice makes and new(T) allocate
// unless bound to a non-escaping local (those are seeded in seedLocals and
// reported only on escape).
func (w *hotWalk) hotBuiltinAlloc(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil || obj != types.Universe.Lookup(id.Name) {
		return false
	}
	switch id.Name {
	case "make":
		if len(call.Args) == 0 {
			return false
		}
		t := w.pkg.Info.TypeOf(call.Args[0])
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Map:
			w.site(call.Pos(), HotAlloc, "map allocation: "+types.ExprString(call))
		case *types.Chan:
			w.site(call.Pos(), HotAlloc, "channel allocation: "+types.ExprString(call))
		case *types.Slice:
			if !w.trackedRHS[call] {
				w.site(call.Pos(), HotAlloc, "heap allocation: "+types.ExprString(call))
			}
		}
		return true
	case "new":
		if !w.trackedRHS[call] {
			w.site(call.Pos(), HotAlloc, "heap allocation: "+types.ExprString(call))
		}
		return true
	}
	return false
}

// hotComposite flags slice and map composite literals (their backing store
// is heap-allocated) unless escape-tracked; value struct and array literals
// are stack-constructed and exempt.
func (w *hotWalk) hotComposite(lit *ast.CompositeLit, stack []ast.Node) {
	t := w.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		w.site(lit.Pos(), HotAlloc, "map literal allocation")
	case *types.Slice:
		if !w.trackedRHS[lit] {
			w.site(lit.Pos(), HotAlloc, "slice literal allocation")
		}
	}
}

// hotLock flags Lock/RLock on sync mutexes. Accessor-pin functions (the
// lockcheck-blessed Memo index protocol) are exempt wholesale; everything
// else needs a :lock allowance on the annotated root.
func (w *hotWalk) hotLock(call *ast.CallExpr) {
	if w.blessed {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return
	}
	t := w.pkg.Info.TypeOf(sel.X)
	if isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex") {
		w.site(call.Pos(), HotLock, "mutex acquisition "+types.ExprString(sel.X)+"."+sel.Sel.Name+"() outside the accessor pins")
	}
}

// hotBoxing flags concrete, non-pointer-shaped arguments passed to interface
// parameters: the conversion heap-allocates the value. Variadic tails are
// skipped (the fmt class already covers ...any sinks), as are nil and
// already-interface arguments.
func (w *hotWalk) hotBoxing(call *ast.CallExpr) {
	tv, ok := w.pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		if !types.IsInterface(params.At(i).Type()) {
			continue
		}
		at := w.pkg.Info.TypeOf(call.Args[i])
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.site(call.Args[i].Pos(), HotBox,
			"interface boxing: "+at.String()+" argument boxed into "+params.At(i).Type().String())
	}
}

// isPointerShaped reports types whose interface representation needs no
// allocation (single pointer word).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// hotMapRange flags map iteration whose body feeds ordered output (appends
// to a slice or sends on a channel): map order is randomized per iteration,
// so the output order is nondeterministic.
func (w *hotWalk) hotMapRange(n *ast.RangeStmt) {
	t := w.pkg.Info.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	feeds := false
	ast.Inspect(n.Body, func(b ast.Node) bool {
		switch b := b.(type) {
		case *ast.SendStmt:
			feeds = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(b.Fun).(*ast.Ident); ok && id.Name == "append" {
				feeds = true
			}
		}
		return !feeds
	})
	if feeds {
		w.site(n.Pos(), HotMapOrder, "map iteration feeds ordered output (nondeterministic order, defeats plan stability)")
	}
}

// hotClosure flags capturing function literals: each one heap-allocates its
// environment. Non-capturing literals and immediately-invoked literals are
// exempt (no environment / does not outlive the statement).
func (w *hotWalk) hotClosure(lit *ast.FuncLit, stack []ast.Node) {
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == lit {
			// Immediately invoked — exempt unless deferred or spawned, where
			// the closure value outlives the statement.
			if len(stack) < 2 {
				return
			}
			switch stack[len(stack)-2].(type) {
			case *ast.DeferStmt, *ast.GoStmt:
			default:
				return
			}
		}
	}
	caps := w.literalCaptures(lit, nil)
	if len(caps) == 0 {
		return
	}
	w.site(lit.Pos(), HotClosure, "closure captures "+joinNames(caps))
}

// literalCaptures returns the sorted names of enclosing-function variables
// the literal references. When loopVarObjs is non-nil, uses of those objects
// are additionally recorded with their positions into the returned issues.
func (w *hotWalk) literalCaptures(lit *ast.FuncLit, loopVars map[types.Object]bool) []string {
	caps := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pkg.Info.Uses[id]
		v, okv := obj.(*types.Var)
		if !okv || v.IsField() {
			return true
		}
		if obj.Pos() < w.fd.Pos() || obj.Pos() >= w.fd.End() {
			return true // package-level or foreign
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own local or parameter
		}
		caps[id.Name] = true
		if loopVars != nil && loopVars[obj] {
			w.curSpawn.loopVars = append(w.curSpawn.loopVars, hotIssue{id.Pos(), id.Name})
		}
		return true
	})
	return sortedKeys(caps)
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// hasLoopAncestor reports a for/range statement among the ancestors.
func hasLoopAncestor(stack []ast.Node) bool {
	for _, anc := range stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// checkEscape updates the escape state of escape-tracked locals from one use.
func (w *hotWalk) checkEscape(id *ast.Ident, stack []ast.Node) {
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	fr, ok := w.freshObjs[obj]
	if !ok || fr.escaped || len(stack) == 0 {
		return
	}
	if w.escapesHereHot(id, stack) {
		fr.escaped = true
	}
}

// escapesHereHot decides whether this use publishes the tracked value.
// Non-escaping uses: field/index/slice access, len/cap/copy/delete, growing
// itself via append, being (re)assigned, being ranged over, nil comparison.
// Everything else — call argument, return, send, composite entry, address-of,
// later append argument — escapes.
func (w *hotWalk) escapesHereHot(id *ast.Ident, stack []ast.Node) bool {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return false
	case *ast.IndexExpr:
		return false
	case *ast.SliceExpr:
		return false
	case *ast.RangeStmt:
		if p.X == id {
			return false
		}
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			return false
		}
	case *ast.IncDecStmt:
		return false
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		fn, ok := ast.Unparen(p.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		switch fn.Name {
		case "len", "cap", "copy", "delete":
			return w.pkg.Info.Uses[fn] == types.Universe.Lookup(fn.Name)
		case "append":
			if w.pkg.Info.Uses[fn] != types.Universe.Lookup("append") {
				return true
			}
			// append(x, ...) grows x in place; x as a later argument leaks.
			return len(p.Args) == 0 || p.Args[0] != id
		}
		return true
	}
	return true
}

// site appends one hot site.
func (w *hotWalk) site(pos token.Pos, class, detail string) {
	w.ff.hotSites = append(w.ff.hotSites, hotSite{pos, class, detail})
}

// isStringExpr reports a string-typed expression.
func (w *hotWalk) isStringExpr(e ast.Expr) bool {
	t := w.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConst reports a compile-time constant expression (constant folding makes
// `"a" + "b"` free).
func (w *hotWalk) isConst(e ast.Expr) bool {
	tv, ok := w.pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// recordSpawn builds the spawn-site table entry for one `go` statement.
func (w *hotWalk) recordSpawn(gs *ast.GoStmt, stack []ast.Node) {
	sp := &SpawnFact{
		Target: "unknown",
		Pos:    w.pkg.Fset.Position(gs.Pos()).String(),
		pos:    gs.Pos(),
	}
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		sp.Target = "func literal"
		w.curSpawn = sp
		sp.Captures = w.literalCaptures(lit, loopVarObjs(w.pkg, stack))
		w.spawnLitFacts(lit, sp)
		w.curSpawn = nil
	} else if fn, _ := calleeObjPkg(w.pkg, gs.Call).(*types.Func); fn != nil {
		sp.Target = fn.FullName()
	}
	w.ff.Spawns = append(w.ff.Spawns, sp)
}

// loopVarObjs collects the loop variables of every for/range ancestor: a
// spawned literal capturing one is the pre-Go-1.22 iteration-sharing hazard.
func loopVarObjs(pkg *Package, stack []ast.Node) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, anc := range stack {
		switch anc := anc.(type) {
		case *ast.ForStmt:
			if init, ok := anc.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, l := range init.Lhs {
					add(l)
				}
			}
		case *ast.RangeStmt:
			if anc.Tok == token.DEFINE {
				add(anc.Key)
				add(anc.Value)
			}
		}
	}
	return vars
}

// spawnLitFacts summarizes the spawned literal's body: its own stop facts,
// static calls, polling sleeps, and cancellation-free sends.
func (w *hotWalk) spawnLitFacts(lit *ast.FuncLit, sp *SpawnFact) {
	calls := make(map[string]bool)
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.isWGDone(n) {
				sp.wgDone = true
			}
			if w.isTimeSleep(n) && loopWithoutSelect(stack) {
				sp.sleeps = append(sp.sleeps, n.Pos())
			}
			if fn, _ := calleeObjPkg(w.pkg, n).(*types.Func); fn != nil {
				calls[fn.FullName()] = true
			}
		case *ast.SelectStmt:
			if selectHasReceive(n) {
				sp.sel = true
			}
		case *ast.ForStmt:
			if n.Cond == nil && !containsSelect(n.Body) {
				sp.unbound = true
			}
		case *ast.RangeStmt:
			w.rangeStop(n, func(fieldKey string) {
				sp.chanRanges = append(sp.chanRanges, chanRange{fieldKey: fieldKey})
			}, func(obj types.Object) {
				sp.localRanges = append(sp.localRanges, obj)
			})
		case *ast.SendStmt:
			w.spawnSend(n, sp, stack)
		}
		stack = append(stack, n)
		return true
	})
	sp.calls = sortedKeys(calls)
}

// spawnSend flags a send with no cancellation arm: outside any select (or in
// a single-arm select) on a channel known to be unbuffered. If the receiver
// goes away, the spawned goroutine blocks forever.
func (w *hotWalk) spawnSend(send *ast.SendStmt, sp *SpawnFact, stack []ast.Node) {
	for _, anc := range stack {
		if sel, ok := anc.(*ast.SelectStmt); ok && len(sel.Body.List) >= 2 {
			return
		}
	}
	id, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	buffered, known := w.chanBuf[obj]
	if known && !buffered {
		sp.sends = append(sp.sends, send.Pos())
	}
}
