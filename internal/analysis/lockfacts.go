package analysis

// lockfacts.go: the facts extension behind the lockorder analyzer. Every
// function body is summarized into an ordered timeline of lock-relevant
// events — mutex acquisitions and releases, operations that can block
// indefinitely (channel ops, selects, md.Provider lookups, singleflight
// waits), and call sites — plus the transitive lock-class closure
// (TransLocks) that lets the analyzer add acquisition-order edges for locks
// taken deep inside callees.
//
// A lock's identity is its class: the (named type, field) pair rendered as
// "pkgpath.Type.field". Sharded stripe arrays collapse automatically —
// m.stripes[i].mu and m.stripes[j].mu select the same field of the same
// element type, so both are one class. Locks that are not struct fields
// (package-level or local mutexes) fall back to "pkgpath.expr".

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

const plancachePkgPath = "orca/internal/plancache"

// Lock-op kinds of a function's event timeline, in the order summarizeLockOps
// emits them (source order).
const (
	lockOpAcquire = iota // mutex Lock/RLock
	lockOpRelease        // mutex Unlock/RUnlock
	lockOpBlock          // an operation that can block indefinitely
	lockOpCall           // a resolvable call site (static or interface)
)

// lockOp is one event of a function's lock timeline.
type lockOp struct {
	kind int
	pos  token.Pos
	// deferred marks events that run at function exit (directly deferred
	// calls and events inside defer func(){...}() literals); the analyzer
	// excludes them from the held-set simulation, except that a deferred
	// release keeps its lock held to the end of the function.
	deferred bool

	// acquire/release
	class string // lock class, "pkgpath.Type.field"
	mode  byte   // 'W' (Lock/Unlock) or 'R' (RLock/RUnlock)
	expr  string // receiver expression text, e.g. "s.mu"

	// block
	blockKind string // "channel send", "select statement", ...

	// call
	callee  string // function key, or interface method id when isIface
	isIface bool
}

// summarizeLockOps builds the declaration's lock-event timeline. Function
// literal bodies are skipped unless directly deferred: a goroutine or
// callback body does not run under the spawning function's held locks,
// while defer func(){ mu.Unlock() }() is the standard unlock idiom.
func (f *Facts) summarizeLockOps(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	if fd.Body == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if !isDeferredLit(stack, n) {
				return false
			}
		case *ast.CallExpr:
			f.lockCallOp(pkg, n, stack, ff)
		case *ast.SendStmt:
			if !inCommGuard(stack, n) {
				ff.lockOps = append(ff.lockOps, lockOp{
					kind: lockOpBlock, pos: n.Pos(), deferred: inDeferredCtx(stack),
					blockKind: "channel send",
				})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inCommGuard(stack, n) {
				ff.lockOps = append(ff.lockOps, lockOp{
					kind: lockOpBlock, pos: n.Pos(), deferred: inDeferredCtx(stack),
					blockKind: "channel receive",
				})
			}
		case *ast.SelectStmt:
			ff.lockOps = append(ff.lockOps, lockOp{
				kind: lockOpBlock, pos: n.Pos(), deferred: inDeferredCtx(stack),
				blockKind: "select statement",
			})
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ff.lockOps = append(ff.lockOps, lockOp{
						kind: lockOpBlock, pos: n.Pos(), deferred: inDeferredCtx(stack),
						blockKind: "channel range",
					})
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// lockCallOp classifies one call expression: a mutex acquire/release, a
// blocking lookup/wait, and/or a call edge for TransLocks propagation.
func (f *Facts) lockCallOp(pkg *Package, call *ast.CallExpr, stack []ast.Node, ff *FuncFacts) {
	deferred := inDeferredCtx(stack)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv := pkg.Info.TypeOf(sel.X)
		var mode byte
		switch sel.Sel.Name {
		case "Lock", "Unlock":
			mode = 'W'
		case "RLock", "RUnlock":
			mode = 'R'
		}
		if mode != 0 && (isNamed(recv, "sync", "Mutex") || isNamed(recv, "sync", "RWMutex")) {
			kind := lockOpAcquire
			if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
				kind = lockOpRelease
			}
			class := fieldKey(pkg, sel.X)
			if class == "" {
				class = pkg.PkgPath + "." + types.ExprString(sel.X)
			}
			ff.lockOps = append(ff.lockOps, lockOp{
				kind: kind, pos: call.Pos(), deferred: deferred,
				class: class, mode: mode, expr: types.ExprString(sel.X),
			})
			return
		}
		// Singleflight wait: FlightGroup.Do blocks waiters on the leader.
		if sel.Sel.Name == "Do" {
			if n := namedType(recv); n != nil && n.Obj().Name() == "FlightGroup" &&
				n.Obj().Pkg() != nil && isPlancachePkg(n.Obj().Pkg().Path()) {
				ff.lockOps = append(ff.lockOps, lockOp{
					kind: lockOpBlock, pos: call.Pos(), deferred: deferred,
					blockKind: "singleflight wait",
				})
			}
		}
		// md.Provider lookups go to the catalog backend and can stall for the
		// full lookup timeout.
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			if id := ifaceMethodID(s.Recv(), sel.Sel.Name); id != "" {
				if id == f.cfg.MDPkgPath+".Provider."+sel.Sel.Name {
					ff.lockOps = append(ff.lockOps, lockOp{
						kind: lockOpBlock, pos: call.Pos(), deferred: deferred,
						blockKind: "md.Provider lookup",
					})
				}
				ff.lockOps = append(ff.lockOps, lockOp{
					kind: lockOpCall, pos: call.Pos(), deferred: deferred,
					callee: id, isIface: true,
				})
				return
			}
		}
	}
	if fn, _ := calleeObjPkg(pkg, call).(*types.Func); fn != nil && fn.Pkg() != nil {
		ff.lockOps = append(ff.lockOps, lockOp{
			kind: lockOpCall, pos: call.Pos(), deferred: deferred,
			callee: fn.FullName(),
		})
	}
}

// isPlancachePkg reports the real plancache package or a fixture standing in
// for it (tamper copies keep their FlightGroup type, but under a fixture
// path).
func isPlancachePkg(path string) bool {
	return path == plancachePkgPath || hasFixturePrefix(path)
}

func hasFixturePrefix(path string) bool {
	return len(path) >= len(fixturePkgPrefix) && path[:len(fixturePkgPrefix)] == fixturePkgPrefix
}

// isDeferredLit reports a function literal invoked directly by a defer
// statement: defer func() { ... }().
func isDeferredLit(stack []ast.Node, lit *ast.FuncLit) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != lit {
		return false
	}
	_, ok = stack[len(stack)-2].(*ast.DeferStmt)
	return ok
}

// inDeferredCtx reports whether the walker is inside a defer statement (a
// direct deferred call, or the body of a deferred literal — non-deferred
// literals are pruned before this runs).
func inDeferredCtx(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// inCommGuard reports whether n is (part of) the communication guard of a
// select case — `case <-ch:` / `case ch <- v:`. The enclosing SelectStmt is
// recorded as the one blocking event; counting the guard too would
// double-report.
func inCommGuard(stack []ast.Node, n ast.Node) bool {
	child := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.CommClause:
			return child == ast.Node(s.Comm)
		case *ast.FuncLit, *ast.FuncDecl, *ast.BlockStmt:
			return false
		}
		child = stack[i]
	}
	return false
}

// finalizeLockOrder computes each function's direct lock-class set
// (LockAcquires) and its transitive closure over static and devirtualized
// call edges (TransLocks), the relation the lockorder analyzer uses to add
// acquisition-order edges at call sites made under a held lock.
func (f *Facts) finalizeLockOrder() {
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	trans := make(map[string]map[string]bool, len(keys))
	for _, k := range keys {
		ff := f.Funcs[k]
		set := make(map[string]bool)
		for _, op := range ff.lockOps {
			if op.kind == lockOpAcquire && !op.deferred {
				set[op.class] = true
			}
		}
		ff.LockAcquires = sortedKeys(set)
		t := make(map[string]bool, len(set))
		for c := range set {
			t[c] = true
		}
		trans[k] = t
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			ff := f.Funcs[k]
			t := trans[k]
			add := func(callee string) {
				for c := range trans[callee] {
					if !t[c] {
						t[c] = true
						changed = true
					}
				}
			}
			for _, c := range ff.Calls {
				add(c)
			}
			for _, ic := range ff.IfaceCalls {
				for _, impl := range f.IfaceImpls[ic] {
					add(impl)
				}
			}
		}
	}
	for _, k := range keys {
		f.Funcs[k].TransLocks = sortedKeys(trans[k])
	}
}

// transLocksOf returns the callee's transitive lock classes: the function's
// own TransLocks for a static callee, or the union over the registered
// implementations for an interface method id.
func (f *Facts) transLocksOf(callee string, isIface bool) []string {
	if !isIface {
		if ff := f.Funcs[callee]; ff != nil {
			return ff.TransLocks
		}
		return nil
	}
	impls := f.IfaceImpls[callee]
	if len(impls) == 0 {
		return nil
	}
	set := make(map[string]bool)
	for _, impl := range impls {
		if ff := f.Funcs[impl]; ff != nil {
			for _, c := range ff.TransLocks {
				set[c] = true
			}
		}
	}
	return sortedKeys(set)
}
