package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error results from the GPOS and DXL layers. Both
// packages report failures through structured gpos.Exception values that
// AMPERe dumps depend on (paper §6); swallowing them hides optimizer
// failures from the fallback and replay machinery.
//
// The check is interprocedural: beyond direct gpos/dxl calls, it flags
// dropped errors of any module function whose facts say it carries a
// gpos/dxl failure in its error result (FuncFacts.CarriesError), so wrapping
// a DXL serializer in a helper does not launder the obligation away.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags calls whose discarded error result originates in internal/gpos " +
		"or internal/dxl, directly or through intermediate functions " +
		"(statement calls, go/defer calls, or assignment to _)",
	Run: runErrDrop,
}

func runErrDrop(p *Pass) {
	self := p.Pkg.Types.Path()
	if self == gposPkgPath || self == dxlPkgPath {
		return // intra-layer plumbing may handle errors structurally
	}
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDroppedCall(p, call, "is discarded")
			}
		case *ast.GoStmt:
			checkDroppedCall(p, n.Call, "is discarded by go statement")
		case *ast.DeferStmt:
			checkDroppedCall(p, n.Call, "is discarded by defer")
		case *ast.AssignStmt:
			checkBlankAssign(p, n)
		}
		return true
	})
}

// errResultIndices returns the positions of error-typed results of the
// called function when dropping them hides a gpos/dxl failure: the callee is
// in gpos/dxl itself, or the facts store marks it an error carrier.
func (p *Pass) errResultIndices(call *ast.CallExpr) []int {
	fn, _ := p.calleeObj(call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if path := fn.Pkg().Path(); path != gposPkgPath && path != dxlPkgPath {
		if p.Facts == nil {
			return nil
		}
		if ff := p.Facts.Lookup(fn); ff == nil || !ff.CarriesError {
			return nil
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// isErrorType accepts error itself and concrete error implementations such
// as *gpos.Exception, the layer's structured error constructor result.
func isErrorType(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if types.Identical(t, errType) {
		return true
	}
	return types.Implements(t, errType.Underlying().(*types.Interface))
}

func (p *Pass) callName(call *ast.CallExpr) string {
	fn, _ := p.calleeObj(call).(*types.Func)
	if fn == nil {
		return "call"
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if n := namedType(recv.Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func checkDroppedCall(p *Pass, call *ast.CallExpr, how string) {
	if idx := p.errResultIndices(call); len(idx) > 0 {
		p.Reportf(call.Pos(), "error result of %s %s", p.callName(call), how)
	}
}

// checkBlankAssign flags `_ = f()` and `v, _ := f()` when the blank slot is
// an error from a gpos/dxl call.
func checkBlankAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, err := f(): tuple assignment.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, i := range p.errResultIndices(call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				p.Reportf(as.Lhs[i].Pos(), "error result of %s is assigned to _", p.callName(call))
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if idx := p.errResultIndices(call); len(idx) == 1 && p.singleErrResult(call) {
				p.Reportf(as.Lhs[i].Pos(), "error result of %s is assigned to _", p.callName(call))
			}
		}
	}
}

// singleErrResult reports whether the call returns exactly one value.
func (p *Pass) singleErrResult(call *ast.CallExpr) bool {
	fn, _ := p.calleeObj(call).(*types.Func)
	if fn == nil {
		return false
	}
	return fn.Type().(*types.Signature).Results().Len() == 1
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
