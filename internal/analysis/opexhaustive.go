package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// OpExhaustive enforces that every operator kind is handled consistently
// across the optimizer's layers. The operator vocabulary lives in
// internal/ops in two forms: the concrete operator types behind the
// Operator/Logical/Physical/Enforcer/ScalarExpr interfaces, and the
// parameter enums (JoinType, AggMode, CmpOp, BoolOpKind, ...); internal/
// search adds the scheduler's job-kind enum (JobKind). A switch in another
// package over any of these must cover every kind or carry an explicit
// default; otherwise a newly added operator or job kind silently falls
// through in cost, stats, DXL, xform or telemetry code.
var OpExhaustive = &Analyzer{
	Name: "opexhaustive",
	Doc: "flags switches over internal/ops operator interfaces, or enums " +
		"from internal/ops and internal/search, that miss a kind and have " +
		"no default clause",
	Run: runOpExhaustive,
}

// enumPkgPaths are the packages whose constant enums must be switched over
// exhaustively. The declaring package itself is exempt: it may define
// partial helpers over its own vocabulary.
var enumPkgPaths = map[string]bool{
	opsPkgPath:    true,
	searchPkgPath: true,
}

func runOpExhaustive(p *Pass) {
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			checkEnumSwitch(p, n)
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(p, n)
		}
		return true
	})
}

// checkEnumSwitch handles `switch v { case ops.InnerJoin: ... }` where v has
// a constant-enum type declared in one of the enum vocabulary packages.
func checkEnumSwitch(p *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named := namedType(p.TypeOf(sw.Tag))
	if named == nil || named.Obj().Pkg() == nil || !enumPkgPaths[named.Obj().Pkg().Path()] {
		return
	}
	if named.Obj().Pkg().Path() == p.Pkg.Types.Path() {
		return // the vocabulary package itself may define partial helpers
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return
	}
	// Universe: package-level constants of the tag type, deduplicated by
	// value so aliases count once.
	universe := make(map[string]string) // exact value -> first const name
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if _, ok := universe[v]; !ok {
			universe[v] = name
		}
	}
	if len(universe) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: author opted out of exhaustiveness
		}
		for _, e := range cc.List {
			if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for v, name := range universe {
		if !covered[v] {
			missing = append(missing, name)
		}
	}
	reportMissing(p, sw.Pos(), fmt.Sprintf("%s.%s", named.Obj().Pkg().Name(), named.Obj().Name()), missing)
}

// checkTypeSwitch handles `switch op.(type)` where the scrutinee's static
// type is an operator interface from internal/ops. Every exported concrete
// implementor must be covered by a concrete case or a broader interface
// case, unless a default is present.
func checkTypeSwitch(p *Pass, sw *ast.TypeSwitchStmt) {
	if p.Pkg.Types.Path() == opsPkgPath {
		return // the vocabulary package itself may define partial helpers
	}
	var x ast.Expr
	switch a := sw.Assign.(type) {
	case *ast.ExprStmt:
		x = a.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		x = a.Rhs[0].(*ast.TypeAssertExpr).X
	default:
		return
	}
	named := namedType(p.TypeOf(x))
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != opsPkgPath {
		return
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return
	}
	// Universe: exported concrete types in internal/ops implementing iface.
	scope := named.Obj().Pkg().Scope()
	universe := make(map[*types.TypeName]bool)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if _, ok := t.Underlying().(*types.Interface); ok {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			universe[tn] = true
		}
	}
	if len(universe) == 0 {
		return
	}
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default
		}
		for _, e := range cc.List {
			tv, ok := p.Pkg.Info.Types[e]
			if !ok || tv.IsNil() {
				continue
			}
			caseT := tv.Type
			if ci, ok := caseT.Underlying().(*types.Interface); ok {
				// An interface case covers all its implementors.
				for tn := range universe {
					if types.Implements(tn.Type(), ci) || types.Implements(types.NewPointer(tn.Type()), ci) {
						delete(universe, tn)
					}
				}
				continue
			}
			if cn := namedType(caseT); cn != nil {
				delete(universe, cn.Obj())
			}
		}
	}
	var missing []string
	for tn := range universe {
		missing = append(missing, tn.Name())
	}
	reportMissing(p, sw.Pos(), fmt.Sprintf("ops.%s", named.Obj().Name()), missing)
}

func reportMissing(p *Pass, pos token.Pos, subject string, missing []string) {
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	shown := missing
	const maxShown = 6
	suffix := ""
	if len(shown) > maxShown {
		suffix = fmt.Sprintf(" and %d more", len(shown)-maxShown)
		shown = shown[:maxShown]
	}
	p.Reportf(pos, "switch over %s is not exhaustive and has no default: missing %s%s",
		subject, strings.Join(shown, ", "), suffix)
}
