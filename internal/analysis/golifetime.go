package analysis

// GoLifetime enforces bounded goroutine lifetimes ahead of the long-running
// serving tier (cmd/orcad): every goroutine spawned on a path reachable from
// the module's entry points must have a provable stop path — a WaitGroup
// pairing the spawner waits on, a select with a receive arm (the
// ctx.Done / done-channel shape), or bounded iteration (no unbounded loop in
// the body or its static callees; ranging a channel counts as bounded only
// when some function in the module closes that channel). On top of the
// stop-path requirement it flags naked time.Sleep polling loops, sends on
// unbuffered channels with no cancellation arm (an abandoned receiver leaks
// the sender forever), and spawned literals capturing loop variables
// (pre-Go-1.22 iteration-sharing style; copy the variable or pass it as an
// argument so the intent survives backports and review).
//
// The spawn-site table — every `go` statement, its enclosing function, its
// capture set, and its stop classification — lives in the facts layer
// (FuncFacts.Spawns) where other analyzers and the facts export can see it.
var GoLifetime = &Analyzer{
	Name: "golifetime",
	Doc: "require a provable stop path for every goroutine reachable from " +
		"the module's entry points; flag sleep-polling, cancellation-free " +
		"sends, and loop-variable capture",
	RunModule: runGoLifetime,
}

func runGoLifetime(mp *ModulePass) {
	f := mp.Facts
	for _, k := range factKeys(f) {
		ff := f.Funcs[k]
		if !f.Reachable[k] && !f.Roots[k] {
			continue
		}
		for _, pos := range ff.sleepPolls {
			mp.Reportf(pos, "time.Sleep polling loop in %s; use a ticker or timer inside a select with a cancellation arm",
				shortKey(k))
		}
		for _, sp := range ff.Spawns {
			if sp.Stop == "none" {
				mp.Reportf(sp.pos, "goroutine spawned in %s has no provable stop path (no WaitGroup pairing, cancellation select, or bounded iteration): %s",
					shortKey(k), spawnDesc(sp))
			}
			for _, lv := range sp.loopVars {
				mp.Reportf(lv.pos, "goroutine spawned in %s captures loop variable %q; copy it or pass it as an argument",
					shortKey(k), lv.msg)
			}
			for _, pos := range sp.sends {
				mp.Reportf(pos, "goroutine spawned in %s sends on an unbuffered channel with no cancellation arm; an abandoned receiver leaks this goroutine",
					shortKey(k))
			}
			for _, pos := range sp.sleeps {
				mp.Reportf(pos, "time.Sleep polling loop in goroutine spawned by %s; use a ticker or timer inside a select with a cancellation arm",
					shortKey(k))
			}
		}
	}
}

// spawnDesc names the spawn target for diagnostics.
func spawnDesc(sp *SpawnFact) string {
	if sp.Target == "func literal" || sp.Target == "unknown" {
		return sp.Target
	}
	return shortKey(sp.Target)
}
