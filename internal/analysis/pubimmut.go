package analysis

// pubimmut generalizes memoimmut's immutability contract to publication
// points: once an object escapes to other goroutines through a registered
// publication site — a plan-cache shard insert, a singleflight result, a Memo
// group publication, a JSON response snapshot — the publishing function must
// not plainly write through it afterward. A later write races with every
// concurrent reader the site just admitted; the fix is rebind-must-copy
// (mutate a copy and publish that), which this analyzer turns from a review
// comment into a build-time invariant. Helper calls count too: passing a
// published object to a function whose facts say it writes the corresponding
// parameter (pubfacts.go) is a mutation at the call site.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PubImmut is the published-object immutability analyzer.
var PubImmut = &Analyzer{
	Name: "pubimmut",
	Doc: "report writes to objects after they escaped through a publication " +
		"site (plan-cache shard insert, singleflight result, memo group " +
		"publication, JSON response snapshot): published objects are shared " +
		"with other goroutines and must be copied before mutation",
	RunModule: runPubImmut,
}

// pubOrigin records how a tracked object escaped.
type pubOrigin struct {
	site string
	pos  token.Pos
}

func runPubImmut(mp *ModulePass) {
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkPublished(mp, pkg, fd)
			}
		}
	}
}

// checkPublished walks one declaration in source order, tracking which local
// objects have escaped through a publication site and reporting plain writes
// and mutating calls that follow. Rebinding the bare identifier ends the
// tracking — that is exactly the rebind-must-copy idiom.
func checkPublished(mp *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	published := make(map[types.Object]pubOrigin)

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pkg.Info.Uses[id]; o != nil {
			return o
		}
		return pkg.Info.Defs[id]
	}
	publish := func(e ast.Expr, site string, pos token.Pos) {
		if o := objOf(e); o != nil {
			if _, ok := o.Type().Underlying().(*types.Basic); ok {
				return // copied on publication; later writes are private
			}
			published[o] = pubOrigin{site: site, pos: pos}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if o := objOf(lhs); o != nil {
					delete(published, o) // bare rebind: the name no longer aliases the published object
					continue
				}
				if id := rootIdent(lhs); id != nil {
					if org, ok := published[pkg.Info.Uses[id]]; ok {
						mp.Reportf(lhs.Pos(), "%s is written after it escaped through %s: the object is shared with other goroutines; rebind a copy instead (rebind-must-copy)",
							id.Name, org.site)
					}
				}
				// Field-store publication: assigning into flight.entry hands
				// the entry to every waiter blocked on the flight.
				if len(n.Rhs) == len(n.Lhs) {
					if site := fieldStoreSite(mp.Config, pkg, lhs); site != "" {
						publish(n.Rhs[i], site, n.Pos())
					}
				}
			}
			// Result publication: a call returning an already-shared object
			// (cache lookup hit, singleflight result) publishes the bound name.
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if site, idx := resultSite(mp.Config, pkg, call); site != "" && idx < len(n.Lhs) {
						publish(n.Lhs[idx], site, n.Pos())
					}
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(n.X); id != nil {
				if org, ok := published[pkg.Info.Uses[id]]; ok {
					mp.Reportf(n.Pos(), "%s is written after it escaped through %s: the object is shared with other goroutines; rebind a copy instead (rebind-must-copy)",
						id.Name, org.site)
				}
			}
		case *ast.CallExpr:
			fn, _ := calleeObjPkg(pkg, n).(*types.Func)
			if fn == nil {
				return true
			}
			facts := mp.Facts
			// A call that hands a published object to a mutating parameter
			// (or receiver) writes through it one frame down.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
				if o := objOf(sel.X); o != nil {
					if org, ok := published[o]; ok && facts.mutatesArg(fn.FullName(), -1) {
						mp.Reportf(n.Pos(), "call to %s mutates %s after it escaped through %s: copy before mutating (rebind-must-copy)",
							fn.Name(), ast.Unparen(sel.X).(*ast.Ident).Name, org.site)
					}
				}
			}
			sig := fn.Type().(*types.Signature)
			for i, arg := range n.Args {
				if sig.Variadic() && i >= sig.Params().Len()-1 {
					break // variadic slots arrive as a fresh slice
				}
				o := objOf(arg)
				if o == nil {
					continue
				}
				if org, ok := published[o]; ok && facts.mutatesArg(fn.FullName(), i) {
					mp.Reportf(n.Pos(), "call to %s mutates %s after it escaped through %s: copy before mutating (rebind-must-copy)",
						fn.Name(), ast.Unparen(arg).(*ast.Ident).Name, org.site)
				}
			}
			// Argument publication: the site shares the argument onward.
			if site, idx := callArgSite(mp.Config, pkg, n, fn); site != "" && idx < len(n.Args) {
				publish(n.Args[idx], site, n.Pos())
			}
		}
		return true
	})
}

// isServePkg reports the configured serve package or a fixture standing in
// for it.
func isServePkg(cfg *Config, path string) bool {
	return path == cfg.ServePkgPath || hasFixturePrefix(path)
}

// isMemoPkg reports the real memo package or a fixture.
func isMemoPkg(path string) bool {
	return path == memoPkgPath || hasFixturePrefix(path)
}

// callArgSite matches publication sites where an argument escapes: the
// plan-cache shard insert and the Memo group publication share the object
// with every later cache/memo reader; a JSON snapshot hands it to the encoder
// on the response goroutine's schedule.
func callArgSite(cfg *Config, pkg *Package, call *ast.CallExpr, fn *types.Func) (string, int) {
	recv := recvTypeName(fn)
	switch {
	case fn.Name() == "Admit" && recv == "Cache" && isPlancachePkg(fn.Pkg().Path()):
		return "a plan-cache shard insert", 1
	case fn.Name() == "publishGroup" && recv == "Memo" && isMemoPkg(fn.Pkg().Path()):
		return "a memo group publication", 0
	case fn.Name() == "writeJSON" && recv == "" && isServePkg(cfg, fn.Pkg().Path()):
		return "a JSON response snapshot", 2
	}
	return "", 0
}

// resultSite matches publication sites where a call result is an object other
// goroutines already hold: a plan-cache lookup hit and a singleflight result
// are shared with every other caller that got the same entry.
func resultSite(cfg *Config, pkg *Package, call *ast.CallExpr) (string, int) {
	fn, _ := calleeObjPkg(pkg, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return "", 0
	}
	recv := recvTypeName(fn)
	switch {
	case fn.Name() == "Lookup" && recv == "Cache" && isPlancachePkg(fn.Pkg().Path()):
		return "a plan-cache lookup", 0
	case fn.Name() == "Do" && recv == "FlightGroup" && isPlancachePkg(fn.Pkg().Path()):
		return "a singleflight result", 0
	}
	return "", 0
}

// fieldStoreSite matches stores that publish their right-hand side: assigning
// flight.entry makes the entry visible to every waiter of the flight once the
// done channel closes.
func fieldStoreSite(cfg *Config, pkg *Package, lhs ast.Expr) string {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "entry" {
		return ""
	}
	n := namedType(pkg.Info.TypeOf(sel.X))
	if n != nil && n.Obj().Name() == "flight" && n.Obj().Pkg() != nil && isPlancachePkg(n.Obj().Pkg().Path()) {
		return "a singleflight publication"
	}
	return ""
}

// recvTypeName returns the name of the method's receiver named type, or "".
func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	n := namedType(sig.Recv().Type())
	if n == nil {
		return ""
	}
	return n.Obj().Name()
}
