package analysis

// respfacts.go: the facts extension behind the respwrite analyzer. Functions
// taking an http.ResponseWriter are scanned with a branch-aware commit
// tracker: every path through the body is classified by whether it has
// committed a response (WriteHeader or first body write), may have committed
// one (a branch that commits but falls through), or has not. The fixpoint
// propagates the classification through helpers — writeJSON commits, so
// writeAPIError commits, so every runOptimize error path commits — giving
// the analyzer interprocedural answers for "does this call answer the
// request?". Alongside, every gpos.Raise/Wrap call site with constant
// component/code is recorded for the error-taxonomy cross-check.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Response-commit states of the scanner's path lattice.
const (
	respNo    = iota // nothing written yet
	respMaybe        // some joined path committed, another did not
	respYes          // the response status is committed on every path here
)

// respFn retains what finalizeResp and the respwrite analyzer need to rescan
// one ResponseWriter-taking function.
type respFn struct {
	pkg     *Package
	fd      *ast.FuncDecl
	handler bool // (http.ResponseWriter, *http.Request) in a serve package
	commit  int  // respNo / respMaybe / respYes (= never / may / always commits)
}

// raiseSite is one gpos.Raise/Wrap call with constant-folded component and
// code ("" when not constant).
type raiseSite struct {
	comp, code string
	pos        token.Pos
}

// isRespWriter reports the net/http.ResponseWriter interface type.
func isRespWriter(t types.Type) bool {
	return isNamed(t, "net/http", "ResponseWriter")
}

// summarizeResp registers ResponseWriter-taking declarations for the commit
// fixpoint and records the body's gpos.Raise/Wrap sites.
func (f *Facts) summarizeResp(pkg *Package, fd *ast.FuncDecl, fn *types.Func, ff *FuncFacts) {
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := calleeObjPkg(pkg, call).(*types.Func)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != f.cfg.GPOSPkgPath {
				return true
			}
			var compArg, codeArg int
			switch callee.Name() {
			case "Raise":
				compArg, codeArg = 0, 1
			case "Wrap":
				compArg, codeArg = 1, 2
			default:
				return true
			}
			if len(call.Args) <= codeArg {
				return true
			}
			ff.raises = append(ff.raises, raiseSite{
				comp: constString(pkg, call.Args[compArg]),
				code: constString(pkg, call.Args[codeArg]),
				pos:  call.Pos(),
			})
			return true
		})
	}

	sig := fn.Type().(*types.Signature)
	hasRW, hasReq := false, false
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isRespWriter(t) {
			hasRW = true
		}
		if isNamed(t, "net/http", "Request") {
			hasReq = true
		}
	}
	if !hasRW || fd.Body == nil {
		return
	}
	if f.respFns == nil {
		f.respFns = make(map[string]*respFn)
	}
	f.respFns[ff.Key] = &respFn{
		pkg: pkg,
		fd:  fd,
		handler: hasReq &&
			(pkg.PkgPath == f.cfg.ServePkgPath || hasFixturePrefix(pkg.PkgPath)),
	}
}

// constString folds a constant string-valued expression ("NoPlan",
// gpos.CompMD, md.CodeLookupTimeout) or returns "".
func constString(pkg *Package, e ast.Expr) string {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// finalizeResp runs the commit scanner over every registered function until
// the classes stabilize (classes only rise through no → may → always, so the
// loop terminates), then mirrors the result into the exported facts.
func (f *Facts) finalizeResp() {
	keys := make([]string, 0, len(f.respFns))
	for k := range f.respFns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			rf := f.respFns[k]
			sc := &respScan{pkg: rf.pkg, facts: f}
			out, terminated := sc.scanStmts(rf.fd.Body.List, respNo)
			commit := respNo
			if sc.sawCommit {
				commit = respYes
				for _, r := range sc.returns {
					if r.state != respYes {
						commit = respMaybe
					}
				}
				if !terminated && out != respYes {
					commit = respMaybe
				}
			}
			if commit > rf.commit {
				rf.commit = commit
				changed = true
			}
		}
	}
	for _, k := range keys {
		switch f.respFns[k].commit {
		case respYes:
			f.Funcs[k].RespCommit = "always"
		case respMaybe:
			f.Funcs[k].RespCommit = "may"
		}
	}
}

// respCommitClass answers how a callee treats a ResponseWriter handed to it.
func (f *Facts) respCommitClass(key string) int {
	if rf := f.respFns[key]; rf != nil {
		return rf.commit
	}
	return respNo
}

// respReturn records the commit state observed at one return statement.
type respReturn struct {
	pos   token.Pos
	state int
}

// respScan walks one function body tracking the response-commit state along
// each path. Deferred and go statements are excluded — a deferred recover
// boundary answering the request is exceptional-path code, and an async
// write is a different bug class. break/continue/goto conservatively end
// their path.
type respScan struct {
	pkg       *Package
	facts     *Facts
	report    func(pos token.Pos, format string, args ...any) // nil: classification only
	returns   []respReturn
	sawCommit bool
}

// joinResp merges the states of two paths.
func joinResp(a, b int) int {
	if a == b {
		return a
	}
	return respMaybe
}

// scanStmts runs the statement list from state and returns the fall-through
// state plus whether every path terminated (returned, panicked, or branched
// away).
func (sc *respScan) scanStmts(stmts []ast.Stmt, state int) (int, bool) {
	for _, s := range stmts {
		var terminated bool
		state, terminated = sc.scanStmt(s, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (sc *respScan) scanStmt(s ast.Stmt, state int) (int, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return sc.scanStmts(s.List, state)
	case *ast.LabeledStmt:
		return sc.scanStmt(s.Stmt, state)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			state = sc.scanExpr(r, state)
		}
		sc.returns = append(sc.returns, respReturn{pos: s.Pos(), state: state})
		return state, true
	case *ast.BranchStmt:
		return state, true
	case *ast.DeferStmt, *ast.GoStmt:
		return state, false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if tv, ok := sc.pkg.Info.Types[call.Fun]; ok && tv.IsBuiltin() {
					return state, true
				}
			}
		}
		return sc.scanExpr(s.X, state), false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			state = sc.scanExpr(r, state)
		}
		return state, false
	case *ast.IncDecStmt, *ast.EmptyStmt, *ast.DeclStmt, *ast.SendStmt:
		return state, false
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = sc.scanStmt(s.Init, state)
		}
		state = sc.scanExpr(s.Cond, state)
		thenOut, thenTerm := sc.scanStmts(s.Body.List, state)
		if s.Else != nil {
			elseOut, elseTerm := sc.scanStmt(s.Else, state)
			switch {
			case thenTerm && elseTerm:
				return state, true
			case thenTerm:
				return elseOut, false
			case elseTerm:
				return thenOut, false
			default:
				return joinResp(thenOut, elseOut), false
			}
		}
		if thenTerm {
			return state, false
		}
		return joinResp(state, thenOut), false
	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = sc.scanStmt(s.Init, state)
		}
		if s.Cond != nil {
			state = sc.scanExpr(s.Cond, state)
		}
		bodyOut, _ := sc.scanStmts(s.Body.List, state)
		return joinResp(state, bodyOut), false
	case *ast.RangeStmt:
		state = sc.scanExpr(s.X, state)
		bodyOut, _ := sc.scanStmts(s.Body.List, state)
		return joinResp(state, bodyOut), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return sc.scanBranches(s, state)
	default:
		return state, false
	}
}

// scanBranches handles switch/type-switch/select: each clause runs from the
// pre-branch state; the outcome joins every falling-through clause, plus the
// pre-branch state itself when a switch has no default (select without a
// default still runs exactly one clause, eventually).
func (sc *respScan) scanBranches(s ast.Stmt, state int) (int, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = sc.scanStmt(s.Init, state)
		}
		if s.Tag != nil {
			state = sc.scanExpr(s.Tag, state)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	outs := []int{}
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		out, term := sc.scanStmts(stmts, state)
		if !term {
			outs = append(outs, out)
			allTerm = false
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true // a default-less select still runs one clause
	}
	if !hasDefault || len(body.List) == 0 {
		outs = append(outs, state)
		allTerm = false
	}
	if allTerm {
		return state, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = joinResp(out, o)
	}
	return out, false
}

// scanExpr applies the commit effects of every call in the expression tree,
// in pre-order (function literals pruned — they do not run inline).
func (sc *respScan) scanExpr(e ast.Expr, state int) int {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			state = sc.applyCall(call, state)
		}
		return true
	})
	return state
}

// applyCall transitions the commit state across one call and reports the
// double-commit findings.
func (sc *respScan) applyCall(call *ast.CallExpr, state int) int {
	info := sc.pkg.Info
	// Direct method calls on the ResponseWriter.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); isRespWriter(t) {
			switch sel.Sel.Name {
			case "WriteHeader":
				return sc.headerCommit(call.Pos(), "WriteHeader", state)
			case "Write":
				return sc.bodyWrite(call.Pos(), state)
			}
		}
	}
	fn, _ := calleeObjPkg(sc.pkg, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return state
	}
	// Committing stdlib helpers taking the writer as their first argument.
	if len(call.Args) > 0 && isRespWriter(info.TypeOf(call.Args[0])) {
		switch fn.Pkg().Path() {
		case "net/http":
			switch fn.Name() {
			case "Error", "NotFound", "Redirect", "ServeFile", "ServeContent":
				return sc.headerCommit(call.Pos(), "http."+fn.Name(), state)
			}
		case "fmt":
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				return sc.bodyWrite(call.Pos(), state)
			}
		case "io":
			if fn.Name() == "WriteString" {
				return sc.bodyWrite(call.Pos(), state)
			}
		}
	}
	// In-module helpers handed the writer: use their commit classification.
	passesRW := false
	for _, arg := range call.Args {
		if isRespWriter(info.TypeOf(arg)) {
			passesRW = true
			break
		}
	}
	if !passesRW {
		return state
	}
	switch sc.facts.respCommitClass(fn.FullName()) {
	case respYes:
		return sc.headerCommit(call.Pos(), fn.Name(), state)
	case respMaybe:
		sc.sawCommit = true
		return joinResp(state, respMaybe)
	}
	return state
}

// headerCommit is a status-line commit (WriteHeader, a taxonomy helper, an
// http.Error): at respYes it is a second response, at respMaybe it may be.
func (sc *respScan) headerCommit(pos token.Pos, what string, state int) int {
	sc.sawCommit = true
	if sc.report != nil {
		switch state {
		case respYes:
			sc.report(pos, "response committed more than once: %s runs after the response status is already written", what)
		case respMaybe:
			sc.report(pos, "response may already be committed on another path when %s runs", what)
		}
	}
	return respYes
}

// bodyWrite is a body write: the first one implicitly commits a 200; a body
// write on a maybe-committed path appends to a response another branch
// already finished.
func (sc *respScan) bodyWrite(pos token.Pos, state int) int {
	sc.sawCommit = true
	if sc.report != nil && state == respMaybe {
		sc.report(pos, "body write while the response may already be committed on another path")
	}
	return respYes
}
