package analysis

import (
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses orcavet findings.
// `stmt() //orcavet:ignore reason` suppresses findings on its own line;
// a standalone `//orcavet:ignore reason` comment suppresses the next line.
// A reason is conventionally required so suppressions stay auditable.
const ignoreDirective = "orcavet:ignore"

// Suppressed reports whether a diagnostic at pos is silenced by an
// `//orcavet:ignore` directive.
func (p *Package) Suppressed(pos token.Position) bool {
	if p.suppressed == nil {
		p.suppressed = make(map[string]map[int]bool)
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			lines := make(map[int]bool)
			src := p.Sources[name]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
					if !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					if standaloneComment(src, cp.Offset) {
						lines[cp.Line+1] = true
					} else {
						lines[cp.Line] = true
					}
				}
			}
			p.suppressed[name] = lines
		}
	}
	return p.suppressed[pos.Filename][pos.Line]
}

// standaloneComment reports whether only whitespace precedes the comment
// starting at offset on its line.
func standaloneComment(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}
