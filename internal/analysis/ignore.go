package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses orcavet findings.
//
//	stmt() //orcavet:ignore:<analyzer>[,<analyzer>] reason
//
// suppresses findings of the named analyzers on its own line; a standalone
// directive comment suppresses the next line. The bare form
// `//orcavet:ignore reason` suppresses every analyzer and exists for
// whole-line waivers; scoped directives are preferred because they keep the
// waiver from hiding findings of unrelated analyzers. A reason is required so
// suppressions stay auditable, and a directive that never suppresses anything
// is itself reported (see unusedIgnores) so stale waivers cannot rot in the
// tree.
const ignoreDirective = "orcavet:ignore"

// ignoreEntry is one parsed //orcavet:ignore directive.
type ignoreEntry struct {
	pos       token.Position  // directive position (for unused-ignore reports)
	line      int             // source line the directive suppresses
	analyzers map[string]bool // nil = all analyzers (bare form)
	reason    string
	malformed string // non-empty: the directive itself is invalid
	used      bool
}

// ignoreEntries parses the package's directives, keyed by filename, building
// the index on first use.
func (p *Package) ignoreEntries() map[string][]*ignoreEntry {
	if p.ignores != nil {
		return p.ignores
	}
	p.ignores = make(map[string][]*ignoreEntry)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		src := p.Sources[name]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), "*/"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				e := parseIgnore(text[len(ignoreDirective):])
				e.pos = p.Fset.Position(c.Pos())
				if standaloneComment(src, e.pos.Offset) {
					e.line = e.pos.Line + 1
				} else {
					e.line = e.pos.Line
				}
				p.ignores[name] = append(p.ignores[name], e)
			}
		}
	}
	return p.ignores
}

// parseIgnore parses the directive tail after "orcavet:ignore": an optional
// ":a1,a2" analyzer scope followed by the mandatory free-text reason.
func parseIgnore(tail string) *ignoreEntry {
	e := &ignoreEntry{}
	if strings.HasPrefix(tail, ":") {
		rest := tail[1:]
		scope := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			scope, rest = rest[:i], rest[i:]
		} else {
			rest = ""
		}
		e.analyzers = make(map[string]bool)
		for _, name := range strings.Split(scope, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				e.malformed = "empty analyzer name in scope"
				continue
			}
			e.analyzers[name] = true
		}
		tail = rest
	}
	e.reason = strings.TrimSpace(tail)
	if e.reason == "" && e.malformed == "" {
		e.malformed = "missing reason"
	}
	return e
}

// suppress reports whether the diagnostic is silenced by a directive whose
// line and analyzer scope match, marking the directive used.
func (p *Package) suppress(d Diagnostic) bool {
	hit := false
	for _, e := range p.ignoreEntries()[d.Pos.Filename] {
		if e.malformed != "" || e.line != d.Pos.Line {
			continue
		}
		if e.analyzers != nil && !e.analyzers[d.Analyzer] {
			continue
		}
		e.used = true
		hit = true
	}
	return hit
}

// Suppressed reports whether a diagnostic of any analyzer at pos would be
// silenced. It exists for callers that only have a position; Run uses the
// analyzer-scoped suppress path.
func (p *Package) Suppressed(pos token.Position) bool {
	for _, e := range p.ignoreEntries()[pos.Filename] {
		if e.malformed == "" && e.line == pos.Line && e.analyzers == nil {
			return true
		}
	}
	return false
}

// unusedIgnores reports malformed directives and directives that suppressed
// nothing in this run, as "ignore" diagnostics: an ignore that stops matching
// (the finding was fixed, the analyzer renamed) must be deleted, not carried.
func unusedIgnores(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		files := make([]string, 0, len(pkg.ignoreEntries()))
		for name := range pkg.ignoreEntries() {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			for _, e := range pkg.ignoreEntries()[name] {
				switch {
				case e.malformed != "":
					out = append(out, Diagnostic{Pos: e.pos, Analyzer: "ignore",
						Message: "malformed //orcavet:ignore directive: " + e.malformed})
				case !e.used:
					out = append(out, Diagnostic{Pos: e.pos, Analyzer: "ignore",
						Message: "unused //orcavet:ignore directive (suppresses no finding); delete it"})
				}
			}
		}
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the comment
// starting at offset on its line.
func standaloneComment(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}
