package analysis

// pubfacts.go: the facts extension behind the pubimmut analyzer. Each
// function is summarized with the parameters (and receiver) it plainly
// mutates — a field store, an element store, or an increment through the
// parameter — and the parameter-passing edges that let a mutation deep in a
// callee chain surface at the caller: if setCost(e) writes e.Cost and
// admit(x) calls setCost(x), then admit mutates its parameter too. The
// pubimmut analyzer combines this closure with its publication-site registry
// to flag writes to objects that have already escaped to other goroutines.

import (
	"go/ast"
	"go/types"
	"sort"
)

// paramPassEdge records one argument position: the caller's parameter
// callerIdx flows into calleeIdx of callee (-1 = the callee's receiver).
type paramPassEdge struct {
	callee    string
	callerIdx int
	calleeIdx int
}

// summarizeMutations records which of the declaration's parameters are
// plainly written through (receiver = index -1) and which are handed onward
// to other functions as arguments or receivers.
func (f *Facts) summarizeMutations(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	if fd.Body == nil {
		return
	}
	params := make(map[types.Object]int)
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if o := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; o != nil {
			params[o] = -1
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if o := pkg.Info.Defs[name]; o != nil && name.Name != "_" {
					params[o] = idx
				}
				idx++
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ff.mutParams = make(map[int]bool)
	mark := func(e ast.Expr) {
		// A write through the parameter (e.f = v, e[k] = v, e.f.g = v)
		// mutates it; rebinding the bare identifier does not.
		if _, bare := ast.Unparen(e).(*ast.Ident); bare {
			return
		}
		if id := rootIdent(e); id != nil {
			if i, ok := params[pkg.Info.Uses[id]]; ok {
				ff.mutParams[i] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.CallExpr:
			fn, _ := calleeObjPkg(pkg, n).(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig := fn.Type().(*types.Signature)
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sig.Recv() != nil {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if i, ok := params[pkg.Info.Uses[id]]; ok {
						ff.paramPass = append(ff.paramPass, paramPassEdge{fn.FullName(), i, -1})
					}
				}
			}
			for ai, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				i, ok := params[pkg.Info.Uses[id]]
				if !ok {
					continue
				}
				ci := ai
				if sig.Variadic() && ci >= sig.Params().Len()-1 {
					continue // a variadic slot is a fresh slice in the callee
				}
				ff.paramPass = append(ff.paramPass, paramPassEdge{fn.FullName(), i, ci})
			}
		}
		return true
	})
}

// rootIdent unwraps selector/index/star/paren chains to the base identifier,
// or nil (e.g. for a call result base).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// finalizeMutations closes parameter mutation over the pass-through edges and
// publishes the result as MutatesRecv / MutatesParams.
func (f *Facts) finalizeMutations() {
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			ff := f.Funcs[k]
			for _, e := range ff.paramPass {
				cf := f.Funcs[e.callee]
				if cf == nil || cf.mutParams == nil || !cf.mutParams[e.calleeIdx] {
					continue
				}
				if ff.mutParams == nil {
					ff.mutParams = make(map[int]bool)
				}
				if !ff.mutParams[e.callerIdx] {
					ff.mutParams[e.callerIdx] = true
					changed = true
				}
			}
		}
	}
	for _, k := range keys {
		ff := f.Funcs[k]
		if len(ff.mutParams) == 0 {
			continue
		}
		for i := range ff.mutParams {
			if i == -1 {
				ff.MutatesRecv = true
			} else {
				ff.MutatesParams = append(ff.MutatesParams, i)
			}
		}
		sort.Ints(ff.MutatesParams)
	}
}

// mutatesArg reports whether calling fn with an object at argument position
// idx (-1 = receiver) can plainly write through it.
func (f *Facts) mutatesArg(key string, idx int) bool {
	ff := f.Funcs[key]
	if ff == nil {
		return false
	}
	if idx == -1 {
		return ff.MutatesRecv
	}
	for _, i := range ff.MutatesParams {
		if i == idx {
			return true
		}
	}
	return false
}
