package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden-file convention: a fixture line carries one `// want "rx" "rx"`
// comment listing regexps that must each match one diagnostic reported on
// that line. Lines without a want comment must stay silent. Fixtures live in
// testdata/src/<name>/ and are loaded as a package outside the module graph,
// so they may contain deliberate invariant violations without breaking the
// build.

var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderInst, loaderErr = NewLoader("")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderInst
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// runFixture loads testdata/src/<fixture> and checks the analyzer's filtered
// diagnostics against the // want expectations.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	runFixtureCfg(t, a, fixture, nil)
}

// runFixtureCfg is runFixture with an analysis config, for analyzers whose
// anchor packages (ops, md, ...) must point into the fixture itself.
func runFixtureCfg(t *testing.T, a *Analyzer, fixture string, cfg *Config) {
	t.Helper()
	runFixtureDirs(t, a, cfg, fixture, "")
}

// runFixtureDirs loads one fixture package per subdir (in order, so earlier
// packages are importable by later ones), runs the analyzer over the whole
// set, and checks // want expectations across every fixture file. An empty
// subdir names the fixture directory itself.
func runFixtureDirs(t *testing.T, a *Analyzer, cfg *Config, fixture string, subdirs ...string) {
	t.Helper()
	l := sharedLoader(t)
	var pkgs []*Package
	for _, sub := range subdirs {
		dir := filepath.Join("testdata", "src", fixture)
		pkgPath := "orcavet.test/" + fixture
		if sub != "" {
			dir = filepath.Join(dir, sub)
			pkgPath += "/" + sub
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := RunModule(pkgs, []*Analyzer{a}, cfg)

	// Collect expectations: file:line -> regexps.
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := pkg.Fset.Position(c.Pos()).Line
					for _, pat := range splitQuoted(t, c, m[1]) {
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
						}
						wants[key{name, line}] = append(wants[key{name, line}], rx)
					}
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(k.file), k.line, rx)
		}
	}
}

// splitQuoted parses the tail of a want comment: one or more regexps quoted
// with double quotes or backticks.
func splitQuoted(t *testing.T, c *ast.Comment, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q := s[0]
		if q != '"' && q != '`' {
			t.Fatalf("malformed want comment %q (expected quoted regexps)", c.Text)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("unterminated regexp in want comment %q", c.Text)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
