package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The tamper tests prove the new analyzers guard real repo invariants, not
// just fixture shapes: each copies a production package into a temp dir,
// verifies the untampered copy is clean (control), applies a minimal
// regression a reviewer could plausibly let through, and demands the
// analyzer fail the build.

// copyPkgDir copies the non-test .go files of a real package directory into
// a fresh temp dir the test may mutate.
func copyPkgDir(t *testing.T, srcDir string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading %s: %v", srcDir, err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), src, 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	return dst
}

// mutate rewrites one occurrence of old to new in dir/file, failing the test
// if the anchor text has drifted out of the production source.
func mutate(t *testing.T, dir, file, old, new string) {
	t.Helper()
	path := filepath.Join(dir, file)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if !strings.Contains(string(src), old) {
		t.Fatalf("tamper anchor %q not found in %s; update the tamper test alongside the source", old, file)
	}
	out := strings.Replace(string(src), old, new, 1)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// runTamper loads dir as the fixture package orcavet.test/tamper/<name> and
// returns the analyzer's filtered findings.
func runTamper(t *testing.T, dir, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir(dir, "orcavet.test/tamper/"+name)
	if err != nil {
		t.Fatalf("loading tampered package: %v", err)
	}
	return RunModule([]*Package{pkg}, []*Analyzer{a}, nil)
}

func wantClean(t *testing.T, diags []Diagnostic, what string) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("%s: unexpected finding: %s", what, d)
	}
}

func wantFinding(t *testing.T, diags []Diagnostic, what, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("%s: no finding containing %q; got %d findings: %v", what, substr, len(diags), diags)
}

// TestTamperMemoInsertSprintf re-adds a fmt.Sprintf to Memo.Insert — the
// exact regression the //orcavet:hotpath annotation exists to catch. The
// :alloc allowance on Insert must not waive it: fmt is never waivable.
func TestTamperMemoInsertSprintf(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "memo"))
	wantClean(t, runTamper(t, ctl, "memoctl", HotPath), "untampered memo")

	dir := copyPkgDir(t, filepath.Join("..", "memo"))
	mutate(t, dir, "memo.go",
		"stack := make([]frame, 1, 32)",
		"stack := make([]frame, 1, 32)\n\t_ = fmt.Sprintf(\"insert of %d\", len(stack))")
	wantFinding(t, runTamper(t, dir, "memotamper", HotPath),
		"memo with Sprintf in Insert", "call to fmt.Sprintf")
}

// TestTamperSchedulerWorkerDone deletes the worker goroutine's WaitGroup
// pairing in Scheduler.Run: the spawned literal then runs an unbounded drain
// loop with no provable stop path.
func TestTamperSchedulerWorkerDone(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "search"))
	wantClean(t, runTamper(t, ctl, "searchctl", GoLifetime), "untampered search")

	dir := copyPkgDir(t, filepath.Join("..", "search"))
	mutate(t, dir, "scheduler.go",
		"go func() {\n\t\t\tdefer wg.Done()\n\t\t\ts.worker()\n\t\t}()",
		"go func() {\n\t\t\ts.worker()\n\t\t}()")
	wantFinding(t, runTamper(t, dir, "searchtamper", GoLifetime),
		"scheduler without worker Done pairing", "no provable stop path")
}

// TestTamperWorkerPoolLoop strips the gpos worker pool's two stop guarantees
// at once — the wg.Done pairing and the close-terminated range — leaving a
// bare receive loop no caller can ever stop.
func TestTamperWorkerPoolLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "gpos"))
	wantClean(t, runTamper(t, ctl, "gposctl", GoLifetime), "untampered gpos")

	dir := copyPkgDir(t, filepath.Join("..", "gpos"))
	mutate(t, dir, "tasks.go",
		"\tdefer p.wg.Done()\n\tfor t := range p.tasks {\n\t\tp.runTask(t)\n\t}",
		"\tfor {\n\t\tp.runTask(<-p.tasks)\n\t}")
	wantFinding(t, runTamper(t, dir, "gpostamper", GoLifetime),
		"worker pool with unstoppable receive loop", "no provable stop path")
}

// TestTamperSingleflightUnlock deletes the waiter-path unlock in
// FlightGroup.Do, leaving the group mutex held across the select that waits
// for the flight leader — one stuck leader would then wedge every flight.
func TestTamperSingleflightUnlock(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "plancache"))
	wantClean(t, runTamper(t, ctl, "plancachectl", LockOrder), "untampered plancache")

	dir := copyPkgDir(t, filepath.Join("..", "plancache"))
	mutate(t, dir, "singleflight.go",
		"\tif f, ok := g.flights[k]; ok {\n\t\tg.mu.Unlock()\n",
		"\tif f, ok := g.flights[k]; ok {\n")
	wantFinding(t, runTamper(t, dir, "plancachetamper", LockOrder),
		"singleflight waiting under the group mutex", "held across")
}

// TestTamperEntryAfterAdmit mutates a plan-cache entry after Admit published
// it to the shard — the exact post-publication write class the PR 9 review
// caught by hand, now a build failure.
func TestTamperEntryAfterAdmit(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "serve"))
	wantClean(t, runTamper(t, ctl, "servectl", PubImmut), "untampered serve")

	dir := copyPkgDir(t, filepath.Join("..", "serve"))
	mutate(t, dir, "plancache.go",
		"\tif !s.plans.Admit(key, e) {\n\t\treturn nil\n\t}\n\treturn e",
		"\tif !s.plans.Admit(key, e) {\n\t\treturn nil\n\t}\n\te.NParams = e.NParams + 1\n\treturn e")
	wantFinding(t, runTamper(t, dir, "servetamper", PubImmut),
		"entry mutated after shard admission", "after it escaped")
}

// TestTamperDoubleWriteHeader duplicates the status write in the serve
// tier's writeJSON — every handler would then double-commit its response.
func TestTamperDoubleWriteHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a production package copy")
	}
	ctl := copyPkgDir(t, filepath.Join("..", "serve"))
	wantClean(t, runTamper(t, ctl, "serverespctl", RespWrite), "untampered serve")

	dir := copyPkgDir(t, filepath.Join("..", "serve"))
	mutate(t, dir, "server.go",
		"\tw.WriteHeader(status)\n",
		"\tw.WriteHeader(status)\n\tw.WriteHeader(status)\n")
	wantFinding(t, runTamper(t, dir, "serveresptamper", RespWrite),
		"writeJSON with a second WriteHeader", "committed more than once")
}
