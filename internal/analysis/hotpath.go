package analysis

import "sort"

// HotPath enforces the allocation-free hot-path contract behind the Memo's
// §6.2 performance story: a `//orcavet:hotpath reason` annotation marks a
// latency-critical function (Memo.Insert, the group-index and
// fingerprint-shard probes, the scheduler step loop, cost evaluation), and
// the analyzer flags — in the annotated function and everything reachable
// from it along warm static call edges — heap-allocating constructs
// (escaping make/new/composite literals, fmt calls, string concatenation,
// capturing closures, interface boxing at call boundaries), defer inside
// loops, map iteration feeding ordered output, and mutex acquisition outside
// lockcheck's accessor pins. Per-function hot-site summaries are computed
// once in the facts layer and propagated here, mirroring atomicpub.
//
// Propagation is deliberate about its edges: failure-path plumbing (blocks
// ending in a raise or panic, recover guards, error factories) is pruned,
// code handed to other goroutines is excluded, and polymorphic interface
// dispatch is a propagation boundary — the boxing at the boundary is flagged
// on the caller, per-implementation discipline belongs to the callee's own
// annotation. Monomorphic interface edges (a single visible implementation)
// are followed.
//
// An annotation can waive whole classes for its own function —
// `//orcavet:hotpath:alloc,lock reason` — but fmt and string concatenation
// are never waivable, and allowances do not propagate to callees.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag heap allocations, locks, and other latency hazards in " +
		"//orcavet:hotpath-annotated functions and their warm callees",
	RunModule: runHotPath,
}

func runHotPath(mp *ModulePass) {
	f := mp.Facts
	for _, issue := range f.hotIssues {
		mp.Reportf(issue.pos, "%s", issue.msg)
	}

	// Breadth-first closure from the annotated roots over warm static edges
	// and monomorphic interface edges, remembering the witness root for
	// attribution. Roots are processed in sorted order so attribution is
	// deterministic when closures overlap.
	witness := make(map[string]string)
	var queue []string
	for _, k := range factKeys(f) {
		if f.Funcs[k].Hotpath {
			witness[k] = k
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		ff := f.Funcs[k]
		if ff == nil {
			continue
		}
		visit := func(callee string) {
			if _, seen := witness[callee]; seen {
				return
			}
			if f.Funcs[callee] == nil {
				return
			}
			witness[callee] = witness[k]
			queue = append(queue, callee)
		}
		for _, c := range ff.warmCalls {
			visit(c)
		}
		for _, ic := range ff.warmIface {
			if impls := f.IfaceImpls[ic]; len(impls) == 1 {
				visit(impls[0])
			}
		}
	}

	keys := make([]string, 0, len(witness))
	for k := range witness {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ff := f.Funcs[k]
		root := witness[k]
		for _, s := range ff.hotSites {
			if ff.hotAllow[s.class] {
				continue
			}
			if root == k {
				mp.Reportf(s.pos, "hot path: %s in //orcavet:hotpath function %s",
					s.detail, shortKey(k))
			} else {
				mp.Reportf(s.pos, "hot path: %s in %s (reachable from //orcavet:hotpath %s)",
					s.detail, shortKey(k), shortKey(root))
			}
		}
	}
}
