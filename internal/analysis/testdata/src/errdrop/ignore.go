package errdropfix

import "orca/internal/gpos"

// This file exercises the //orcavet:ignore mechanism: both violations below
// are suppressed, so the fixture expects no diagnostics here.

func suppressedSameLine(t *gpos.Task) {
	t.Err() //orcavet:ignore fixture exercises same-line suppression
}

func suppressedNextLine(t *gpos.Task) {
	//orcavet:ignore fixture exercises standalone next-line suppression
	t.Err()
}
