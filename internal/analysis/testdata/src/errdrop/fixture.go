// Package errdropfix seeds violations and legal near-misses for the errdrop
// analyzer.
package errdropfix

import (
	"orca/internal/dxl"
	"orca/internal/gpos"
)

func badDrops(t *gpos.Task) {
	t.Err()       // want `error result of Task\.Err is discarded`
	go t.Err()    // want `error result of Task\.Err is discarded by go statement`
	defer t.Err() // want `error result of Task\.Err is discarded by defer`
	_ = t.Err()   // want `error result of Task\.Err is assigned to _`
}

// Raise returns *gpos.Exception, not error, but dropping a freshly
// constructed exception loses the failure all the same.
func badDroppedRaise() {
	gpos.Raise(gpos.CompMemo, "Probe", "constructed and dropped") // want `error result of gpos\.Raise is discarded`
	_ = gpos.Wrap(nil, gpos.CompMemo, "Probe", "dropped")         // want `error result of gpos\.Wrap is assigned to _`
}

func okRaiseReturned() error {
	return gpos.Raise(gpos.CompMemo, "Probe", "propagated")
}

func badTupleDrop(doc string) *dxl.Node {
	n, _ := dxl.ParseXML(doc) // want `error result of dxl\.ParseXML is assigned to _`
	return n
}

func okHandled(t *gpos.Task, doc string) (*dxl.Node, error) {
	if err := t.Err(); err != nil {
		return nil, err
	}
	n, err := dxl.ParseXML(doc)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// Calls whose results are genuinely consumed stay silent.
func okConsumed(t *gpos.Task) bool {
	return t.Err() == nil && t.Done()
}
