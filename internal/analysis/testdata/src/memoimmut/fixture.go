// Package memoimmutfix seeds violations and legal near-misses for the
// memoimmut analyzer.
package memoimmutfix

import (
	"orca/internal/memo"
	"orca/internal/ops"
	"orca/internal/props"
)

func badFieldWrites(ge *memo.GroupExpr, g *memo.Group) {
	ge.Op = nil        // want `write to memo\.GroupExpr\.Op outside internal/memo`
	ge.Children = nil  // want `write to memo\.GroupExpr\.Children outside internal/memo`
	ge.Children[0] = 7 // want `write to memo\.GroupExpr\.Children outside internal/memo`
	g.ID++             // want `write to memo\.Group\.ID outside internal/memo`
}

// OptContext carries the best-so-far plan and the per-epoch completion
// markers; rebinding its request or group would detach the accumulated best
// plan from its goal.
func badCtxWrites(c *memo.OptContext) {
	c.Group = nil            // want `write to memo\.OptContext\.Group outside internal/memo`
	c.Req = props.Required{} // want `write to memo\.OptContext\.Req outside internal/memo`
}

func okCtxReads(c *memo.OptContext) (float64, bool) {
	_ = c.Group // reading OptContext fields is fine
	_ = c.Req
	_, _, ok := c.Best()
	return c.BestCost(), ok
}

// fakeExpr has the same field names as memo.GroupExpr; writes to it are legal.
type fakeExpr struct {
	Op       ops.Operator
	Children []memo.GroupID
}

func okFieldAccess(f *fakeExpr, ge *memo.GroupExpr) {
	f.Op = ge.Op             // reading memo fields is fine
	f.Children = ge.Children // writing our own struct is fine
	if len(ge.Children) > 0 {
		_ = ge.Children[0]
	}
}

func badRetention(m *memo.Memo, children []memo.GroupID) {
	if _, err := m.InsertExpr(&ops.Get{}, children, -1); err != nil {
		return
	}
	children[0] = 1                // want `mutation of slice children after it was passed to Memo\.InsertExpr`
	children = append(children, 2) // want `append to slice children after it was passed to Memo\.InsertExpr`
	_ = children
}

func okRetention(m *memo.Memo, children []memo.GroupID) {
	children[0] = 1 // mutation before the hand-off is fine
	cp := append([]memo.GroupID(nil), children...)
	if _, err := m.InsertExpr(&ops.Get{}, cp, -1); err != nil {
		return
	}
	children[1] = 2 // a different slice than the one handed off
}
