// Package pubimmut exercises the published-object immutability analyzer:
// fixture stand-ins for the plan cache, singleflight group, memo, and JSON
// snapshot writer define the publication sites; the functions below mutate
// (or correctly copy) objects after they escape.
package pubimmut

type Entry struct {
	Key     string
	NParams int
}

type Cache struct{}

func (c *Cache) Admit(k string, e *Entry) bool {
	e.Key = k
	return true
}

func (c *Cache) Lookup(k string) *Entry { return nil }

type FlightGroup struct{}

func (g *FlightGroup) Do(k string) (*Entry, bool) { return nil, false }

type flight struct {
	entry *Entry
}

type Memo struct{}

func (m *Memo) publishGroup(e *Entry) { e.Key = "published" }

func writeJSON(w any, status int, v any) {}

func BadAfterAdmit(c *Cache, e *Entry) {
	c.Admit("k", e)
	e.NParams = 1 // want "escaped through a plan-cache shard insert"
}

// OKCopyAfterAdmit rebinds a copy before mutating — the rebind-must-copy
// idiom the analyzer enforces.
func OKCopyAfterAdmit(c *Cache, e *Entry) *Entry {
	c.Admit("k", e)
	cp := *e
	cp.NParams = 2
	return &cp
}

func BadLookupMutation(c *Cache) {
	e := c.Lookup("k")
	if e != nil {
		e.NParams = 3 // want "escaped through a plan-cache lookup"
	}
}

func BadFlightResult(g *FlightGroup) {
	e, _ := g.Do("k")
	e.NParams = 4 // want "escaped through a singleflight result"
}

func BadFlightStore(f *flight, e *Entry) {
	f.entry = e
	e.NParams = 5 // want "escaped through a singleflight publication"
}

func BadMemoPublish(m *Memo, e *Entry) {
	m.publishGroup(e)
	e.Key = "x" // want "escaped through a memo group publication"
}

func BadSnapshot(e *Entry) {
	writeJSON(nil, 200, e)
	e.NParams++ // want "escaped through a JSON response snapshot"
}

func mutateEntry(e *Entry) { e.NParams = 9 }

func BadHelperMutation(c *Cache, e *Entry) {
	c.Admit("k", e)
	mutateEntry(e) // want "mutates e after it escaped"
}

func (e *Entry) bump() { e.NParams++ }

func (e *Entry) size() int { return e.NParams }

func BadMethodMutation(c *Cache, e *Entry) {
	c.Admit("k", e)
	e.bump() // want "mutates e after it escaped"
}

// OKMethodRead calls a non-mutating method on the published entry.
func OKMethodRead(c *Cache, e *Entry) int {
	c.Admit("k", e)
	return e.size()
}

// OKRebind rebinds the name to a fresh object; the published one is no
// longer reachable through it.
func OKRebind(c *Cache, e *Entry) {
	c.Admit("k", e)
	e = &Entry{}
	e.NParams = 7
	_ = e
}

// OKReadAfter only reads the published entry.
func OKReadAfter(c *Cache, e *Entry) int {
	c.Admit("k", e)
	return e.NParams
}
