// Package golifetime exercises the spawn-site table and stop-path
// classification: WaitGroup pairing, cancellation selects, bounded bodies,
// channel-range termination via a module-visible close, and the leak shapes
// (no stop path, sleep polling, cancellation-free sends, loop-variable
// capture).
package golifetime

import (
	"sync"
	"time"
)

type pool struct {
	tasks chan int
	done  chan struct{}
	wg    sync.WaitGroup
}

func process(int)  {}
func compute() int { return 0 }
func drain(*pool)  {}

// Leak spawns a goroutine that can never be stopped.
func Leak(p *pool) {
	go func() { // want `goroutine spawned in golifetime\.Leak has no provable stop path \(no WaitGroup pairing, cancellation select, or bounded iteration\): func literal`
		for {
			process(<-p.tasks)
		}
	}()
}

// Paired is the same loop rescued by a WaitGroup pairing.
func Paired(p *pool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			process(<-p.tasks)
		}
	}()
	p.wg.Wait()
}

// Selectable is the same loop rescued by a cancellation arm.
func Selectable(p *pool) {
	go func() {
		for {
			select {
			case t := <-p.tasks:
				process(t)
			case <-p.done:
				return
			}
		}
	}()
}

// Bounded spawns a straight-line goroutine: it terminates by construction.
func Bounded() {
	ch := make(chan int, 1)
	go func() { ch <- compute() }()
	<-ch
}

// NakedSend parks the goroutine forever if the receiver gives up.
func NakedSend() int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want `goroutine spawned in golifetime\.NakedSend sends on an unbuffered channel with no cancellation arm`
	}()
	return <-ch
}

// Poller spins on time.Sleep with no cancellation arm — and has no stop path
// either.
func Poller(p *pool) {
	go func() { // want `goroutine spawned in golifetime\.Poller has no provable stop path`
		for {
			time.Sleep(time.Millisecond) // want `time\.Sleep polling loop in goroutine spawned by golifetime\.Poller`
			drain(p)
		}
	}()
}

// PollStatus sleeps in a loop on a reachable non-goroutine path.
func PollStatus(s *srv) {
	for {
		time.Sleep(time.Millisecond) // want `time\.Sleep polling loop in golifetime\.PollStatus`
		if len(s.requests) == 0 {
			return
		}
	}
}

// LoopCapture spawns literals that share the loop variable
// (pre-Go-1.22-style); copy it or pass it as an argument.
func LoopCapture(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it) // want `goroutine spawned in golifetime\.LoopCapture captures loop variable "it"`
		}()
	}
	wg.Wait()
}

func (p *pool) worker() {
	for t := range p.tasks {
		process(t)
	}
}

// RangeClosed ranges over a channel some function in the module closes, so
// the worker is provably stoppable.
func RangeClosed(p *pool) {
	go p.worker()
	close(p.tasks)
}

type srv struct {
	requests chan int
}

func (s *srv) loop() {
	for r := range s.requests {
		process(r)
	}
}

// RangeUnclosed spawns a worker ranging a channel nobody ever closes.
func RangeUnclosed(s *srv) {
	go s.loop() // want `goroutine spawned in golifetime\.RangeUnclosed has no provable stop path \(no WaitGroup pairing, cancellation select, or bounded iteration\): golifetime\.srv\)\.loop`
}
