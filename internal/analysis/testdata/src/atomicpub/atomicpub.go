// Package atomicpub exercises the atomicpub analyzer: mixed plain/atomic
// field access, copies of declared-atomic fields, and publish-then-wire
// ordering around atomic stores.
package atomicpub

import "sync/atomic"

// Counter uses old-style atomics for its field; every other access must too.
type Counter struct {
	n int64
}

func (c *Counter) Incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *Counter) Racy() int64 {
	return c.n // want `plain access to orcavet.test/atomicpub\.Counter\.n, which is accessed via sync/atomic elsewhere`
}

// Gauge declares its field atomic; only method access and address-taking are
// sanctioned.
type Gauge struct {
	v atomic.Int64
}

func (g *Gauge) Set(x int64) { g.v.Store(x) }

func (g *Gauge) Addr() *atomic.Int64 { return &g.v }

func (g *Gauge) Leak() atomic.Int64 {
	return g.v // want `atomic-typed field orcavet.test/atomicpub\.Gauge\.v copied or reassigned without sync/atomic`
}

// node is shared state published through an atomic pointer.
type node struct {
	val  int
	next *node
}

type list struct {
	head atomic.Pointer[node]
}

// PublishThenWire stores the node first and wires it afterwards — the
// ordering bug class this analyzer exists for. n is a parameter, so another
// goroutine can already reach it when the write lands.
func (l *list) PublishThenWire(n *node, v int) {
	l.head.Store(n)
	n.val = v // want `plain write to n\.val after atomic publication`
}

// WireThenPublish is the verified pattern: all writes dominate the store.
func (l *list) WireThenPublish(v int) {
	n := &node{}
	n.val = v
	n.next = nil
	l.head.Store(n)
}

// FreshAfterStore wires a still-private local after an unrelated store; no
// other goroutine can observe m yet, so the write is safe.
func (l *list) FreshAfterStore(v int) *node {
	m := &node{}
	l.head.Store(nil)
	m.val = v
	return m
}

// IndexAfterStore matches the Memo's directory-slot pattern: index writes
// after a store stay exempt because slot visibility is gated by a later
// atomic counter store, not by the write itself.
func (l *list) IndexAfterStore(chunks [][]*node, g *node) {
	l.head.Store(g)
	chunks[0] = append(chunks[0], g)
	chunks[0][0] = g
}
