package lockcheckfix

// Fixtures for the memoindex and ruleledger rules: a stand-in Memo struct
// carrying the guarded field names (the rule keys on the struct name, so the
// fixture does not need to import internal/memo).

type fpStripeFix struct{ n int }

// Memo mirrors the guarded shape of the real memo.Memo.
type Memo struct {
	groupN     int64
	chunkDir   *int
	stripes    [4]fpStripeFix
	reqStripes [4]fpStripeFix
}

// Allowed accessors: these names own the index's publication protocol.

func (m *Memo) NumGroups() int { return int(m.groupN) }

func (m *Memo) Group(id int) *int { return m.chunkDir }

func (m *Memo) groupSnapshot() int64 { return m.groupN }

func (m *Memo) publishGroup() {
	m.groupN++
}

func (m *Memo) InsertExpr() int { return m.stripes[0].n }

func (m *Memo) Validate() int { return m.stripes[1].n }

func (m *Memo) InternReq() int { return m.reqStripes[0].n }

func (m *Memo) LookupReq() int { return m.reqStripes[1].n }

// Violations: anything else reaching into the guarded fields.

func (m *Memo) badCount() int64 {
	return m.groupN // want `direct access to Memo\.groupN outside its accessors`
}

func (m *Memo) badDirectory() *int {
	return m.chunkDir // want `direct access to Memo\.chunkDir outside its accessors`
}

func badStripeSteal(m *Memo) int {
	return m.stripes[2].n // want `direct access to Memo\.stripes outside its accessors`
}

func badReqSteal(m *Memo) int {
	return m.reqStripes[2].n // want `direct access to Memo\.reqStripes outside its accessors`
}

// Method values are not field accesses and stay legal anywhere.

func okMethodValue(m *Memo) func() int {
	return m.NumGroups
}

// ruleledger: the applied ledger must be a bitset over dense rule IDs.

type badExpr struct {
	applied map[string]bool // want `field applied is a string-keyed map`
}

type okExpr struct {
	applied []uint64 // dense bitset: legal
}

type okOtherMap struct {
	applied map[int]bool // int-keyed: not the string-hashing regression
}

func useFixtureFields(b *badExpr, o *okExpr, m *okOtherMap) int {
	return len(b.applied) + len(o.applied) + len(m.applied)
}
