// Package lockcheckfix seeds violations and legal near-misses for the
// lockcheck analyzer.
package lockcheckfix

import "sync"

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *queue) badWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		q.cond.Wait() // want `sync\.Cond\.Wait must be wrapped in a for loop`
	}
}

func (q *queue) okWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
}

func (q *queue) badNoUnlock() {
	q.mu.Lock() // want `q\.mu\.Lock without a matching q\.mu\.Unlock in the same function`
	q.n++
}

func badNoRUnlock(rw *sync.RWMutex, n *int) {
	rw.RLock() // want `rw\.RLock without a matching rw\.RUnlock in the same function`
	(*n)++
}

func (q *queue) badReturnBetween(x bool) {
	q.mu.Lock()
	if x {
		return // want `return path may leave q\.mu held`
	}
	q.mu.Unlock()
}

func (q *queue) okDeferred(x bool) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if x {
		return 0
	}
	return q.n
}

func (q *queue) okDeferredClosure() {
	q.mu.Lock()
	defer func() {
		q.n--
		q.mu.Unlock()
	}()
	q.n++
}

func (q *queue) okManualOnEveryPath(x bool) {
	q.mu.Lock()
	if x {
		q.mu.Unlock()
		return
	}
	q.n++
	q.mu.Unlock()
}

// holder embeds a mutex; copying it breaks mutual exclusion.
type holder struct {
	mu sync.Mutex
	v  int
}

func (h holder) badValueRecv() int { // want `value receiver of type .*holder`
	return h.v
}

func badAssignCopy(h *holder) {
	cp := *h // want `assignment copies a value of type .*holder`
	cp.v++
}

func badRangeCopy(hs []holder) int {
	total := 0
	for _, h := range hs { // want `range copies values of type .*holder`
		total += h.v
	}
	return total
}

func sink(holder) {}

func badArgCopy(h *holder) {
	sink(*h) // want `call passes a value of type .*holder by value`
}

func okPointerUse(h *holder) *holder {
	p := h // copying the pointer is fine
	sink(holder{})
	return p
}
