// Package lockorder exercises the lock-acquisition-order analyzer: order
// cycles between lock classes (direct and through a callee) and locks held
// across indefinitely-blocking operations.
package lockorder

import (
	"sync"

	"orcavet.test/lockorder/mdx"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

// FlightGroup mirrors the plancache singleflight type; in fixture packages
// its Do method counts as a singleflight wait.
type FlightGroup struct{}

func (g *FlightGroup) Do(k string) int { return len(k) }

type Pair struct {
	a    A
	b    B
	c    C
	ch   chan int
	prov mdx.Provider
}

// AB and BA take the two lock classes in opposite orders: every edge of the
// resulting cycle is reported at its witness acquisition.
func (p *Pair) AB() {
	p.a.mu.Lock()
	p.b.mu.Lock() // want "lock acquisition order cycle"
	p.b.mu.Unlock()
	p.a.mu.Unlock()
}

func (p *Pair) BA() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.lockA() // want "lock acquisition order cycle"
}

func (p *Pair) lockA() {
	p.a.mu.Lock()
	p.a.mu.Unlock()
}

func (p *Pair) HeldSend(v int) {
	p.a.mu.Lock()
	p.ch <- v // want "held across channel send"
	p.a.mu.Unlock()
}

func (p *Pair) HeldRecv() int {
	p.a.mu.Lock()
	v := <-p.ch // want "held across channel receive"
	p.a.mu.Unlock()
	return v
}

func (p *Pair) HeldSelect(done chan struct{}) {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	select { // want "held across select statement"
	case <-done:
	case v := <-p.ch:
		_ = v
	}
}

func (p *Pair) HeldProvider(id int) (string, error) {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	return p.prov.Lookup(id) // want "held across md.Provider lookup"
}

func (p *Pair) HeldFlight(g *FlightGroup) int {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	return g.Do("k") // want "held across singleflight wait"
}

// OKRelease releases before the send: nothing is held across it.
func (p *Pair) OKRelease(v int) {
	p.a.mu.Lock()
	p.a.mu.Unlock()
	p.ch <- v
}

// OKGoroutine sends from a spawned goroutine, which does not run under the
// spawner's locks.
func (p *Pair) OKGoroutine() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	go func() {
		p.ch <- 1
	}()
}

// OKNested nests two classes in one consistent order only: an edge without a
// reverse edge is not a cycle.
func (p *Pair) OKNested() {
	p.a.mu.Lock()
	p.c.mu.Lock()
	p.c.mu.Unlock()
	p.a.mu.Unlock()
}
