// Package mdx is the fixture stand-in for the metadata package: it carries
// the Provider interface whose lookups the lockorder analyzer treats as
// indefinitely-blocking operations.
package mdx

// Provider mirrors md.Provider for the fixture run.
type Provider interface {
	Lookup(id int) (string, error)
}
