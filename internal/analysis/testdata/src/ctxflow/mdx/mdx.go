// Package mdx mirrors the metadata access layer: a Provider interface whose
// lookups must run under the timedLookup deadline wrapper. The ctxflow test
// points Config.MDPkgPath at this package.
package mdx

import (
	"context"
	"time"
)

// Provider is the backend lookup interface; the analyzer keys on its name.
type Provider interface {
	GetObject(ctx context.Context, id int) (int, error)
}

// Accessor caches provider lookups and carries the session context.
type Accessor struct {
	ctx     context.Context
	timeout time.Duration
	p       Provider
}

// NewAccessor mints the base context: entry points may call Background.
func NewAccessor(p Provider) *Accessor {
	return &Accessor{ctx: context.Background(), p: p}
}

// BindContext rebinds the accessor to a request context.
func (a *Accessor) BindContext(ctx context.Context) { a.ctx = ctx }

// timedLookup is the deadline wrapper; provider calls made by functions that
// go through it are sanctioned.
func timedLookup(ctx context.Context, d time.Duration, call func(context.Context) (int, error)) (int, error) {
	if d <= 0 {
		return call(ctx)
	}
	tctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return call(tctx)
}

// Fetch routes its provider call through timedLookup, so it stays silent.
func (a *Accessor) Fetch(id int) (int, error) {
	return timedLookup(a.ctx, a.timeout, func(ctx context.Context) (int, error) {
		return a.p.GetObject(ctx, id)
	})
}

// Sidestep calls the provider directly, dodging the deadline wrapper.
func (a *Accessor) Sidestep(id int) (int, error) {
	return a.p.GetObject(a.ctx, id) // want `md.Provider call outside timedLookup`
}
