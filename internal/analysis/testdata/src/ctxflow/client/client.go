// Package client consumes the metadata layer from outside it: provider calls
// here must go through the Accessor, and interior functions must thread the
// context their caller handed them.
package client

import (
	"context"

	"orcavet.test/ctxflow/mdx"
)

// Run is an entry point: minting the root context here is allowed.
func Run(a *mdx.Accessor, p mdx.Provider) error {
	ctx := context.Background()
	a.BindContext(ctx)
	return step(ctx, p)
}

// step is interior and reachable from Run; its direct provider call skips
// the Accessor's timeout layer.
func step(ctx context.Context, p mdx.Provider) error {
	_, err := p.GetObject(ctx, 1) // want `bypasses the Accessor timeout layer`
	return err
}

// Dropped takes a context and never lets it reach the body.
func Dropped(ctx context.Context, n int) int { // want `ctx parameter "ctx" is dropped`
	return n + 1
}

// Detach is the root that makes detached reachable.
func Detach(a *mdx.Accessor) (int, error) {
	return detached(a)
}

// detached re-roots the request path on a fresh context instead of threading
// the one its caller was given.
func detached(a *mdx.Accessor) (int, error) {
	a.BindContext(context.Background()) // want `context.Background/TODO inside a request path`
	return a.Fetch(1)
}

// orphan is unreachable from any entry point: its Background stays silent.
func orphan() context.Context {
	return context.Background()
}
