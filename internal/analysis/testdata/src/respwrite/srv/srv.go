// Package srv exercises the handler response-lifecycle analyzer: handlers
// that double-commit, return without answering, or write on maybe-committed
// paths, plus an error taxonomy that enumerates codes (no generic
// passthrough) so unmapped exception codes are findings.
package srv

import (
	"fmt"
	"net/http"

	"orcavet.test/respwrite/gposx"
)

type APIError struct {
	Status int
	Code   string
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	fmt.Fprintln(w, v)
}

func writeErr(w http.ResponseWriter, e *APIError) {
	writeJSON(w, e.Status, e.Code)
}

// mapError enumerates codes instead of passing ex.Code through, so only the
// codes named here are considered mapped.
func mapError(err error) *APIError {
	if ex, ok := err.(*gposx.Exception); ok {
		if ex.Code == "NoPlan" {
			return &APIError{Status: 422, Code: "NoPlan"}
		}
	}
	return &APIError{Status: 500, Code: "Internal"}
}

func optimize() error {
	return gposx.Raise(gposx.CompServe, "NoPlan", "no plan produced")
}

func fetchMD() error {
	return gposx.Raise(gposx.CompMD, "LookupTimeout", "metadata lookup timed out") // want "no mapping in the JSON error taxonomy"
}

// HandleOK commits exactly once on every path.
func HandleOK(w http.ResponseWriter, r *http.Request) {
	if err := optimize(); err != nil {
		writeErr(w, mapError(err))
		return
	}
	if err := fetchMD(); err != nil {
		writeErr(w, mapError(err))
		return
	}
	writeJSON(w, http.StatusOK, "ok")
}

func HandleDouble(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusOK) // want "committed more than once"
	_, _ = w.Write([]byte("ok"))
}

func HandleNakedReturn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		return // want "returns without committing a response"
	}
	writeJSON(w, http.StatusOK, "ok")
}

func HandleMaybeDouble(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		writeErr(w, &APIError{Status: 400, Code: "BadRequest"})
	}
	writeJSON(w, http.StatusOK, "ok") // want "may already be committed"
}

func HandleMaybeReturn(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, "ok")
	}
	return // want "may return without committing"
}

func HandleEndFallthrough(w http.ResponseWriter, r *http.Request) { // no response at all
	_ = r.Method
} // want "end of its body without committing"

// HandleImplicit commits implicitly through its first body write; the later
// explicit write-path is clean because the state is already committed on
// every path.
func HandleImplicit(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "streaming")
	fmt.Fprintln(w, "more")
}
