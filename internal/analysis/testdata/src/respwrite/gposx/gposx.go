// Package gposx is the fixture stand-in for the gpos exception layer: the
// Exception type plus the Raise/Wrap constructors whose component/code pairs
// respwrite cross-checks against the serve error taxonomy.
package gposx

type Component string

const (
	CompServe Component = "Serve"
	CompMD    Component = "MD"
)

type Exception struct {
	Comp Component
	Code string
	Msg  string
}

func (e *Exception) Error() string { return e.Msg }

func Raise(comp Component, code, format string, args ...any) *Exception {
	return &Exception{Comp: comp, Code: code, Msg: format}
}

func Wrap(cause error, comp Component, code, format string, args ...any) *Exception {
	return &Exception{Comp: comp, Code: code, Msg: format}
}
