// Package opexhaustivefix seeds violations and legal near-misses for the
// opexhaustive analyzer.
package opexhaustivefix

import (
	"orca/internal/ops"
	"orca/internal/search"
)

func badEnumSwitch(t ops.JoinType) string {
	switch t { // want `switch over ops\.JoinType is not exhaustive and has no default: missing AntiJoin, LeftJoin, SemiJoin`
	case ops.InnerJoin:
		return "inner"
	}
	return ""
}

func okEnumDefault(t ops.JoinType) string {
	switch t {
	case ops.InnerJoin:
		return "inner"
	default:
		return "other"
	}
}

func okEnumFull(t ops.JoinType) string {
	switch t {
	case ops.InnerJoin, ops.LeftJoin:
		return "plain"
	case ops.SemiJoin, ops.AntiJoin:
		return "existential"
	}
	return ""
}

func badBoolKind(k ops.BoolOpKind) int {
	switch k { // want `switch over ops\.BoolOpKind is not exhaustive and has no default: missing BoolNot`
	case ops.BoolAnd:
		return 1
	case ops.BoolOr:
		return 2
	}
	return 0
}

func badTypeSwitch(op ops.Operator) int {
	switch op.(type) { // want `switch over ops\.Operator is not exhaustive and has no default`
	case *ops.Get:
		return 1
	case *ops.Select:
		return 2
	}
	return 0
}

func okTypeSwitchDefault(op ops.Operator) int {
	switch op.(type) {
	case *ops.Get:
		return 1
	default:
		return 0
	}
}

// All enforcers are physical operators, so a single interface case covers
// the whole universe without a default.
func okInterfaceCovers(e ops.Enforcer) int {
	switch e.(type) {
	case ops.Physical:
		return 1
	}
	return 0
}

// The scheduler's job-kind enum is part of the enforced vocabulary: a
// telemetry printer that misses a kind would silently drop its counters.
func badJobKindSwitch(k search.JobKind) int {
	switch k { // want `switch over search\.JobKind is not exhaustive and has no default: missing JobImp, JobOpt, JobStats, JobXform`
	case search.JobExp:
		return 1
	}
	return 0
}

func okJobKindDefault(k search.JobKind) string {
	switch k {
	case search.JobExp:
		return "exp"
	default:
		return "other"
	}
}

func okJobKindFull(k search.JobKind) bool {
	switch k {
	case search.JobExp, search.JobImp, search.JobOpt, search.JobXform:
		return false
	case search.JobStats:
		return true
	}
	return false
}

// Switches over non-vocabulary enums are out of scope.
type localKind int

const (
	kindA localKind = iota
	kindB
)

func okLocalEnum(k localKind) int {
	switch k {
	case kindA:
		return 1
	}
	return 0
}
