// Package hotpath exercises the //orcavet:hotpath annotation grammar, the
// hot-site classes, allowance waivers, interprocedural propagation along warm
// call edges and monomorphic interface edges, and cold-path pruning.
package hotpath

import (
	"fmt"
	"sync"
)

var (
	sink      []int
	sinkBytes []byte
)

type item struct {
	name string
}

type store struct {
	mu    sync.Mutex
	items []*item
	index map[string]*item
}

// Probe is a stand-in for a fingerprint-shard probe: locks and formatting on
// the lookup path are exactly what the analyzer exists to flag.
//
//orcavet:hotpath memo probe stand-in
func (s *store) Probe(name string) *item {
	s.mu.Lock() // want `hot path: mutex acquisition s\.mu\.Lock\(\) outside the accessor pins in //orcavet:hotpath function hotpath\.store\)\.Probe`
	it := s.index[name]
	s.mu.Unlock()
	msg := fmt.Sprintf("probe %s", name) // want `hot path: call to fmt\.Sprintf in //orcavet:hotpath function hotpath\.store\)\.Probe`
	_ = msg
	return it
}

// Insert waives the alloc class (the ledger append is amortized) but not the
// lock class: the allowance is scoped, not blanket.
//
//orcavet:hotpath:alloc ledger append is amortized
func (s *store) Insert(name string) {
	it := &item{name: name}
	s.items = append(s.items, it)
	s.mu.Lock() // want `hot path: mutex acquisition s\.mu\.Lock\(\) outside the accessor pins`
	s.items[0] = it
	s.mu.Unlock()
}

// Fingerprint propagates its annotation into hashNames along the warm static
// call edge.
//
//orcavet:hotpath fingerprint probe stand-in
func Fingerprint(names []string) int {
	return hashNames(names)
}

func hashNames(names []string) int {
	parts := make([]int, 0, len(names)) // want `hot path: escaping make\(\[\]int\) in hotpath\.hashNames \(reachable from //orcavet:hotpath hotpath\.Fingerprint\)`
	for _, n := range names {
		parts = append(parts, len(n))
	}
	sink = parts
	h := 0
	for _, v := range parts {
		h += v
	}
	return h
}

type probeError struct{ msg string }

func (e *probeError) Error() string { return e.msg }

// Checked shows cold-path pruning: construction and formatting of a definite
// failure value in a block ending with its return is error plumbing, not a
// hot-path regression.
//
//orcavet:hotpath probe with a failure tail
func Checked(names []string) error {
	if len(names) == 0 {
		return &probeError{msg: fmt.Sprintf("empty probe at %d", len(names))}
	}
	return nil
}

// Drain defers inside a loop: the defers pile up until return.
//
//orcavet:hotpath drain loop stand-in
func (s *store) Drain() {
	for _, it := range s.items {
		defer release(it) // want `hot path: defer inside a loop`
	}
}

func release(*item) {}

// Names iterates a map into an ordered sink: plan output must not depend on
// map iteration order.
//
//orcavet:hotpath snapshot stand-in
func (s *store) Names() []string {
	var out []string
	for name := range s.index { // want `hot path: map iteration feeds ordered output`
		out = append(out, name)
	}
	return out
}

// Total builds a capturing closure per call.
//
//orcavet:hotpath cost evaluation stand-in
func Total(items []*item) int {
	n := 0
	walk := func(it *item) { n += len(it.name) } // want `hot path: closure captures n`
	for _, it := range items {
		walk(it)
	}
	return n
}

type display interface{ Display() string }

type namedVal struct{ v int }

func (n namedVal) Display() string { return "boxed" }

func sinkDisplay(d display) { _ = d }

// Box passes a concrete value where an interface is expected: the conversion
// heap-allocates.
//
//orcavet:hotpath boxing stand-in
func Box(n namedVal) {
	sinkDisplay(n) // want `hot path: interface boxing: orcavet\.test/hotpath\.namedVal argument boxed into orcavet\.test/hotpath\.display`
}

// Key concatenates strings on the render path.
//
//orcavet:hotpath key render stand-in
func Key(a, b string) string {
	return a + b // want `hot path: string concatenation`
}

type stepper interface{ Step() }

type onlyImpl struct{ n int }

func (o *onlyImpl) Step() {
	buf := make([]byte, o.n) // want `hot path: escaping make\(\[\]byte\) in hotpath\.onlyImpl\)\.Step \(reachable from //orcavet:hotpath hotpath\.Dispatch\)`
	sinkBytes = buf
}

// Dispatch calls through an interface with exactly one visible
// implementation: the monomorphic edge is followed.
//
//orcavet:hotpath dispatch stand-in
func Dispatch(s stepper) {
	s.Step()
}

type multi interface{ Go() }

type m1 struct{}

func (m1) Go() { sinkBytes = make([]byte, 1) }

type m2 struct{}

func (m2) Go() { sinkBytes = make([]byte, 2) }

// Boundary dispatches through a polymorphic interface: propagation stops at
// the boundary, so neither implementation's allocation is attributed here.
//
//orcavet:hotpath polymorphic boundary stand-in
func Boundary(m multi) {
	m.Go()
}

// BadAllowEmpty has a trailing comma in its allowance scope.
//
//orcavet:hotpath:alloc, wanted a second class // want `malformed //orcavet:hotpath directive: empty allowance in scope`
func BadAllowEmpty() {}

// BadAllowFmt tries to waive the unwaivable.
//
//orcavet:hotpath:fmt best effort // want `malformed //orcavet:hotpath directive: allowance "fmt" cannot be waived on a hot path`
func BadAllowFmt() {}

// Floating hosts a directive that is not a function doc comment.
func Floating() {
	//orcavet:hotpath floating reason // want `//orcavet:hotpath directive must be in a function declaration's doc comment`
	_ = 0
}
