// Package legs is the opclosure fixture's consumer side: the test points
// every consumer package path (xform, stats, cost, engine, dxl) at this one
// package, so any reference establishes the non-DXL legs while function
// names gate the DXL serialize/parse legs.
package legs

import "orcavet.test/opclosure/ops"

// RuleJoin gives Join its xform, stats, cost and engine legs.
func RuleJoin(op ops.Logical) bool {
	_, ok := op.(*ops.Join)
	return ok
}

// SerializeJoin gives Join its DXL serialize leg.
func SerializeJoin(op ops.Logical) bool {
	_, ok := op.(*ops.Join)
	return ok
}

// ParseJoin gives Join its DXL parse leg.
func ParseJoin() *ops.Join { return &ops.Join{} }

// CostHashJoin covers HashJoin's cost and engine legs; no serialize-named
// function references it, so its dxl-serialize leg stays missing.
func CostHashJoin(op ops.Physical) float64 {
	if _, ok := op.(*ops.HashJoin); ok {
		return 2
	}
	return 1
}

// SerializeSort covers Sort completely: any reference satisfies the cost and
// engine legs, and the function name supplies dxl-serialize.
func SerializeSort(op ops.Physical) bool {
	_, ok := op.(*ops.Sort)
	return ok
}

// ParseConst references Const only through its constructor, covering the
// engine and dxl-parse legs but not dxl-serialize.
func ParseConst() ops.ScalarExpr { return ops.NewConst() }
