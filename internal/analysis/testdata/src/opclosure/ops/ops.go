// Package ops is the opclosure fixture's operator inventory: exported struct
// types classified by the most specific operator interface they implement.
package ops

// Logical operators produce alternatives during exploration.
type Logical interface{ isLogical() }

// Physical operators carry costs and run on the engine.
type Physical interface{ isPhysical() }

// Enforcer operators are physical operators inserted to satisfy properties.
type Enforcer interface {
	Physical
	isEnforcer()
}

// ScalarExpr is the scalar expression kind.
type ScalarExpr interface{ isScalar() }

// Join is logical and fully covered by the legs package.
type Join struct{}

func (*Join) isLogical() {}

// Orphan is logical and referenced nowhere: every required leg is missing.
type Orphan struct{} // want `logical operator Orphan has no dxl-parse leg` `logical operator Orphan has no dxl-serialize leg` `logical operator Orphan has no stats leg` `logical operator Orphan has no xform leg`

func (*Orphan) isLogical() {}

// HashJoin is physical; the legs package references it everywhere except in
// a serialize-named function.
type HashJoin struct{} // want `physical operator HashJoin has no dxl-serialize leg`

func (*HashJoin) isPhysical() {}

// Sort is an enforcer, fully covered through its serialize function alone.
type Sort struct{}

func (*Sort) isPhysical() {}
func (*Sort) isEnforcer() {}

// Const is scalar and referenced only through its constructor: the coverage
// scan must credit constructor calls to the type they build.
type Const struct{} // want `scalar operator Const has no dxl-serialize leg`

func (*Const) isScalar() {}

// NewConst is Const's constructor.
func NewConst() *Const { return &Const{} }
