// Package ignores exercises the //orcavet:ignore directive machinery: scoped
// suppression, standalone (next-line) suppression, mandatory reasons, and
// unused-directive reporting. The test runs only atomicpub over it with
// ReportUnusedIgnores on.
package ignores

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

// read is suppressed by a scoped inline directive.
func (c *counter) read() int64 {
	return c.n //orcavet:ignore:atomicpub fixture exercises scoped inline suppression
}

// peek is suppressed by a standalone directive covering the next line.
func (c *counter) peek() int64 {
	//orcavet:ignore:atomicpub fixture exercises standalone suppression
	return c.n
}

// wrongScope carries a directive naming a different analyzer: the finding
// still fires and the directive is reported unused.
func (c *counter) wrongScope() int64 {
	return c.n //orcavet:ignore:errdrop fixture wrong analyzer scope // want `plain access to orcavet.test/ignores\.counter\.n` `unused //orcavet:ignore directive`
}

//orcavet:ignore:atomicpub fixture stale waiver suppressing nothing // want `unused //orcavet:ignore directive \(suppresses no finding\)`
func (c *counter) clean() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) alsoClean() { /*orcavet:ignore:atomicpub*/ // want `malformed //orcavet:ignore directive: missing reason`
	atomic.AddInt64(&c.n, 1)
}
