// Package faultpointfix seeds violations and legal uses for the faultpoint
// analyzer: Inject call-site discipline against the real fault package, and
// the central-table declaration checks against a mimicked Registered table.
package faultpointfix

import "orca/internal/fault"

// The declaration checks key off any package declaring a
// `Registered map[string]string` table, so the fixture mimics the fault
// package's shape.
const (
	PointGood = "fix/good"
	PointDupe = "fix/good" // want `fault point PointDupe duplicates the name "fix/good" of PointGood`
	PointLost = "fix/lost" // want `fault point PointLost \("fix/lost"\) is missing from the Registered table`
)

const stray = "fix/stray"

var Registered = map[string]string{
	PointGood: "a properly declared and registered point",
	"fix/raw": "raw literal key", // want `Registered key does not reference a Point constant`
	stray:     "non-Point key",   // want `Registered key does not reference a Point constant`
}

func okInject() error {
	if err := fault.Inject(fault.PointMemoInsert); err != nil {
		return err
	}
	return fault.Default.Inject(fault.PointCoreExtract)
}

func badInject(dynamic string) {
	_ = fault.Inject("memo/insert")       // want `fault point named by a raw string literal "memo/insert"`
	_ = fault.Inject(PointGood)           // want `fault point constant PointGood is not declared in the fault package`
	_ = fault.Inject(dynamic)             // want `must be a fault\.Point\* constant, not a dynamic expression`
	_ = fault.Default.Inject("dxl/parse") // want `raw string literal`
}
