package cost

import (
	"testing"

	"orca/internal/base"
	"orca/internal/ops"
	"orca/internal/props"
)

func model(segments int) *Model { return NewModel(DefaultParams(segments)) }

func distributed(rows float64) Inputs {
	return Inputs{OutRows: rows, ChildRows: []float64{rows}, Delivered: props.Derived{Dist: props.Hashed(0)}}
}

func TestParallelismDividesWork(t *testing.T) {
	m := model(16)
	scan := &ops.Scan{BaseRows: 16000}
	par := m.LocalCost(scan, Inputs{OutRows: 16000, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1})
	ser := m.LocalCost(scan, Inputs{OutRows: 16000, Delivered: props.Derived{Dist: props.SingletonDist}, Skew: 1})
	if par*15 > ser*16 {
		t.Errorf("distributed scan (%g) not ~16x cheaper than singleton (%g)", par, ser)
	}
}

func TestSkewPenalizesDistributedWork(t *testing.T) {
	m := model(8)
	scan := &ops.Scan{BaseRows: 8000}
	flat := m.LocalCost(scan, Inputs{OutRows: 8000, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1})
	skewed := m.LocalCost(scan, Inputs{OutRows: 8000, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 3})
	if skewed <= flat {
		t.Error("skew multiplier ignored")
	}
	capped := m.LocalCost(scan, Inputs{OutRows: 8000, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 100})
	if capped > flat*DefaultParams(8).MaxSkew*1.01 {
		t.Error("skew multiplier not capped")
	}
}

// TestBroadcastVsRedistributeCrossover reproduces the motion trade-off the
// optimizer exploits: broadcasting a small inner side beats redistributing a
// large outer side, and flips once the inner side grows.
func TestBroadcastVsRedistributeCrossover(t *testing.T) {
	m := model(16)
	outer := 1_000_000.0
	colocate := func(inner float64) float64 {
		// redistribute both sides on the join key
		return m.LocalCost(&ops.Redistribute{Cols: []base.ColID{0}},
			Inputs{OutRows: outer, ChildRows: []float64{outer}, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1}) +
			m.LocalCost(&ops.Redistribute{Cols: []base.ColID{0}},
				Inputs{OutRows: inner, ChildRows: []float64{inner}, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1})
	}
	broadcast := func(inner float64) float64 {
		return m.LocalCost(&ops.Broadcast{},
			Inputs{OutRows: inner, ChildRows: []float64{inner}, Delivered: props.Derived{Dist: props.ReplicatedDist}, Skew: 1})
	}
	if broadcast(100) >= colocate(100) {
		t.Errorf("tiny inner: broadcast (%g) should beat redistribution (%g)", broadcast(100), colocate(100))
	}
	if broadcast(5_000_000) <= colocate(5_000_000) {
		t.Errorf("huge inner: redistribution (%g) should beat broadcast (%g)",
			colocate(5_000_000), broadcast(5_000_000))
	}
}

func TestNLJoinDwarfsHashJoinOnLargeInputs(t *testing.T) {
	m := model(8)
	in := Inputs{OutRows: 10000, ChildRows: []float64{10000, 10000}, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1}
	hj := m.LocalCost(&ops.HashJoin{}, in)
	nl := m.LocalCost(&ops.NLJoin{}, in)
	if nl < hj*100 {
		t.Errorf("NL join (%g) should dwarf hash join (%g) on 10k x 10k", nl, hj)
	}
}

func TestSortCostSuperlinear(t *testing.T) {
	m := model(1)
	small := m.LocalCost(&ops.Sort{}, Inputs{ChildRows: []float64{1000}, Delivered: props.Derived{Dist: props.SingletonDist}})
	big := m.LocalCost(&ops.Sort{}, Inputs{ChildRows: []float64{100000}, Delivered: props.Derived{Dist: props.SingletonDist}})
	if big < small*100 {
		t.Errorf("sort cost not superlinear: %g vs %g", small, big)
	}
}

func TestIndexScanBeatsFullScanWhenSelective(t *testing.T) {
	m := model(4)
	full := m.LocalCost(&ops.Scan{BaseRows: 100000},
		Inputs{OutRows: 10, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1})
	idx := m.LocalCost(&ops.IndexScan{BaseRows: 100000},
		Inputs{OutRows: 10, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1})
	if idx >= full {
		t.Errorf("selective index scan (%g) not cheaper than full scan (%g)", idx, full)
	}
}

func TestSubPlanCostScalesWithOuterRows(t *testing.T) {
	m := model(4)
	inner := &ops.Expr{Cost: 500}
	sp := &ops.SubPlanFilter{Plan: inner}
	small := m.LocalCost(sp, Inputs{ChildRows: []float64{10}, Delivered: props.Derived{Dist: props.SingletonDist}})
	big := m.LocalCost(sp, Inputs{ChildRows: []float64{10000}, Delivered: props.Derived{Dist: props.SingletonDist}})
	if big < small*900 {
		t.Errorf("subplan cost must scale with outer rows: %g vs %g", small, big)
	}
	if small < 10*500 {
		t.Errorf("subplan cost must include inner plan cost per row: %g", small)
	}
}

func TestCostsAreFiniteAndPositive(t *testing.T) {
	m := model(4)
	operators := []ops.Operator{
		&ops.Scan{BaseRows: 100}, &ops.IndexScan{BaseRows: 100},
		&ops.Filter{Pred: ops.NewConst(base.NewBool(true))},
		ops.NewComputeScalar(nil),
		&ops.HashJoin{}, &ops.NLJoin{},
		&ops.HashAgg{}, &ops.StreamAgg{}, &ops.ScalarAgg{},
		&ops.Sort{}, &ops.PhysicalLimit{},
		&ops.Gather{}, &ops.GatherMerge{}, &ops.Redistribute{Cols: []base.ColID{0}},
		&ops.Broadcast{}, &ops.Spool{}, &ops.PhysicalUnionAll{},
		&ops.Sequence{}, &ops.PhysicalCTEProducer{}, &ops.PhysicalCTEConsumer{},
		&ops.PhysicalWindow{},
	}
	in := Inputs{OutRows: 100, ChildRows: []float64{100, 100}, Delivered: props.Derived{Dist: props.Hashed(0)}, Skew: 1}
	for _, op := range operators {
		c := m.LocalCost(op, in)
		if c < 0 || c != c /* NaN */ {
			t.Errorf("%s cost = %g", op.Name(), c)
		}
	}
}
