// Package cost implements Orca's cost model: per-operator formulas over
// estimated cardinalities, aware of the segment count and of data movement.
// Costs approximate wall-clock execution time in abstract work units; work
// performed by distributed operators is divided across segments, and skewed
// redistributions are charged a skew multiplier derived from the statistics
// (paper §4.1: histograms derive "estimates for cardinality and data skew").
//
// The parameters are deliberately tunable: §6.2 of the paper (TAQO) is about
// measuring how well these numbers order real plans, and the TAQO harness in
// internal/taqo scores exactly this model against the simulated engine.
package cost

import (
	"math"

	"orca/internal/ops"
	"orca/internal/props"
)

// Params are the tunable cost-model constants, in abstract work units per
// tuple (1.0 = one tuple touched by one CPU).
type Params struct {
	Segments int // number of segments in the cluster

	CPUTuple     float64 // baseline per-tuple processing
	CPUPred      float64 // per-tuple predicate evaluation
	CPUProj      float64 // per-tuple projection
	HashBuild    float64 // per-tuple hash table insert
	HashProbe    float64 // per-tuple hash table probe
	SortFactor   float64 // multiplier on n·log2(n)
	NetTuple     float64 // per-tuple network transfer
	Materialize  float64 // per-tuple spool write+read
	IndexLookup  float64 // per-matching-tuple index access
	MaxSkew      float64 // cap on the skew multiplier
	NLJoinTuple  float64 // per-pair nested-loops evaluation
	SubPlanStart float64 // per-outer-row subplan startup overhead
}

// DefaultParams returns the calibrated defaults for the simulated engine.
func DefaultParams(segments int) Params {
	if segments < 1 {
		segments = 1
	}
	return Params{
		Segments:     segments,
		CPUTuple:     1.0,
		CPUPred:      0.6,
		CPUProj:      0.4,
		HashBuild:    1.6,
		HashProbe:    1.1,
		SortFactor:   1.0,
		NetTuple:     2.5,
		Materialize:  1.4,
		IndexLookup:  2.0,
		MaxSkew:      4.0,
		NLJoinTuple:  0.55,
		SubPlanStart: 12.0,
	}
}

// Model computes operator costs.
type Model struct {
	P Params
}

// NewModel builds a model over the given parameters.
func NewModel(p Params) *Model { return &Model{P: p} }

// Inputs carries everything the per-operator formulas need.
type Inputs struct {
	// OutRows is the estimated output cardinality of the operator.
	OutRows float64
	// ChildRows holds the estimated output cardinality of each child.
	ChildRows []float64
	// Delivered is the operator's delivered physical properties.
	Delivered props.Derived
	// Skew multiplies distributed work (1 = uniform); the optimizer derives
	// it from the histogram of the hashing column for motions.
	Skew float64
}

// parallelism returns the divisor for work performed under the given
// distribution.
func (m *Model) parallelism(d props.Distribution) float64 {
	if d.Kind == props.DistSingleton {
		return 1
	}
	return float64(m.P.Segments)
}

// childRowsAt returns the cardinality of the i'th child, or 0 when the
// estimate vector is short. A package function rather than a per-call
// closure: LocalCost runs once per candidate and must not allocate.
func childRowsAt(rows []float64, i int) float64 {
	if i < len(rows) {
		return rows[i]
	}
	return 0
}

// The LocalCost dispatch switch is generated into dispatch.gen.go from the
// physical operator definitions in defs/; the cost<Op> methods below are
// the hand-written per-operator formulas it calls. Each formula applies the
// skew clamp and parallelism divisor via workScale.

// workScale returns the parallelism divisor and clamped skew multiplier for
// the operator's delivered distribution.
func (m *Model) workScale(in Inputs) (par, skew float64) {
	skew = in.Skew
	if skew < 1 {
		skew = 1
	}
	if skew > m.P.MaxSkew {
		skew = m.P.MaxSkew
	}
	return m.parallelism(in.Delivered.Dist), skew
}

func (m *Model) costScan(o *ops.Scan, in Inputs) float64 {
	par, skew := m.workScale(in)
	rows := o.BaseRows
	if rows <= 0 {
		rows = in.OutRows
	}
	work := rows * m.P.CPUTuple
	if o.Filter != nil {
		work += rows * m.P.CPUPred
	}
	return work / par * skew
}

func (m *Model) costIndexScan(o *ops.IndexScan, in Inputs) float64 {
	par, _ := m.workScale(in)
	base := o.BaseRows
	if base < 2 {
		base = 2
	}
	work := in.OutRows*m.P.IndexLookup + math.Log2(base)*m.P.CPUTuple
	return work / par
}

func (m *Model) costFilter(_ *ops.Filter, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.CPUPred / par
}

func (m *Model) costComputeScalar(o *ops.ComputeScalar, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.CPUProj * float64(max(1, len(o.Elems))) / par
}

func (m *Model) costHashJoin(o *ops.HashJoin, in Inputs) float64 {
	par, skew := m.workScale(in)
	build := childRowsAt(in.ChildRows, 1) * m.P.HashBuild
	probe := childRowsAt(in.ChildRows, 0)*m.P.HashProbe + in.OutRows*m.P.CPUTuple
	if o.Residual != nil {
		probe += in.OutRows * m.P.CPUPred
	}
	return (build + probe) / par * skew
}

func (m *Model) costNLJoin(_ *ops.NLJoin, in Inputs) float64 {
	par, _ := m.workScale(in)
	pairs := childRowsAt(in.ChildRows, 0) * childRowsAt(in.ChildRows, 1)
	return (pairs*m.P.NLJoinTuple + in.OutRows*m.P.CPUTuple) / par
}

func (m *Model) costHashAgg(_ *ops.HashAgg, in Inputs) float64 {
	par, _ := m.workScale(in)
	return (childRowsAt(in.ChildRows, 0)*m.P.HashBuild + in.OutRows*m.P.CPUTuple) / par
}

func (m *Model) costStreamAgg(_ *ops.StreamAgg, in Inputs) float64 {
	par, _ := m.workScale(in)
	return (childRowsAt(in.ChildRows, 0)*m.P.CPUTuple + in.OutRows*m.P.CPUTuple) / par
}

func (m *Model) costScalarAgg(_ *ops.ScalarAgg, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.CPUTuple / par
}

func (m *Model) costSort(_ *ops.Sort, in Inputs) float64 {
	par, _ := m.workScale(in)
	n := childRowsAt(in.ChildRows, 0) / par
	if n < 2 {
		n = 2
	}
	return n * math.Log2(n) * m.P.SortFactor
}

func (m *Model) costPhysicalLimit(_ *ops.PhysicalLimit, in Inputs) float64 {
	return in.OutRows * m.P.CPUTuple
}

func (m *Model) costGather(_ *ops.Gather, in Inputs) float64 {
	return childRowsAt(in.ChildRows, 0) * m.P.NetTuple
}

func (m *Model) costGatherMerge(_ *ops.GatherMerge, in Inputs) float64 {
	return childRowsAt(in.ChildRows, 0) * (m.P.NetTuple + 0.2*m.P.CPUTuple)
}

func (m *Model) costRedistribute(_ *ops.Redistribute, in Inputs) float64 {
	par, skew := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.NetTuple / par * skew
}

func (m *Model) costBroadcast(_ *ops.Broadcast, in Inputs) float64 {
	// Every segment receives the full input.
	return childRowsAt(in.ChildRows, 0) * m.P.NetTuple
}

func (m *Model) costSpool(_ *ops.Spool, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.Materialize / par
}

func (m *Model) costPhysicalUnionAll(_ *ops.PhysicalUnionAll, in Inputs) float64 {
	par, _ := m.workScale(in)
	var total float64
	for i := range in.ChildRows {
		total += childRowsAt(in.ChildRows, i)
	}
	return total * m.P.CPUTuple * 0.2 / par
}

func (m *Model) costSequence(_ *ops.Sequence, _ Inputs) float64 { return 0 }

func (m *Model) costPhysicalCTEProducer(_ *ops.PhysicalCTEProducer, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.Materialize / par
}

func (m *Model) costPhysicalCTEConsumer(_ *ops.PhysicalCTEConsumer, in Inputs) float64 {
	par, _ := m.workScale(in)
	return in.OutRows * m.P.CPUTuple * 0.4 / par
}

func (m *Model) costPhysicalWindow(o *ops.PhysicalWindow, in Inputs) float64 {
	par, _ := m.workScale(in)
	return childRowsAt(in.ChildRows, 0) * m.P.CPUTuple * float64(max(1, len(o.Wins))) / par
}

func (m *Model) costSubPlanFilter(o *ops.SubPlanFilter, in Inputs) float64 {
	return m.subPlanCost(childRowsAt(in.ChildRows, 0), o.Plan)
}

func (m *Model) costSubPlanProject(o *ops.SubPlanProject, in Inputs) float64 {
	return m.subPlanCost(childRowsAt(in.ChildRows, 0), o.Plan)
}

// costDefault covers operators without a dedicated formula.
func (m *Model) costDefault(in Inputs) float64 {
	par, _ := m.workScale(in)
	return in.OutRows * m.P.CPUTuple / par
}

// subPlanCost charges one full subplan execution per outer row — the
// repeated-execution behaviour decorrelation exists to avoid.
func (m *Model) subPlanCost(outerRows float64, plan *ops.Expr) float64 {
	per := m.P.SubPlanStart
	if plan != nil {
		per += plan.Cost
	}
	return outerRows * per
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
