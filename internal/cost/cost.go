// Package cost implements Orca's cost model: per-operator formulas over
// estimated cardinalities, aware of the segment count and of data movement.
// Costs approximate wall-clock execution time in abstract work units; work
// performed by distributed operators is divided across segments, and skewed
// redistributions are charged a skew multiplier derived from the statistics
// (paper §4.1: histograms derive "estimates for cardinality and data skew").
//
// The parameters are deliberately tunable: §6.2 of the paper (TAQO) is about
// measuring how well these numbers order real plans, and the TAQO harness in
// internal/taqo scores exactly this model against the simulated engine.
package cost

import (
	"math"

	"orca/internal/ops"
	"orca/internal/props"
)

// Params are the tunable cost-model constants, in abstract work units per
// tuple (1.0 = one tuple touched by one CPU).
type Params struct {
	Segments int // number of segments in the cluster

	CPUTuple     float64 // baseline per-tuple processing
	CPUPred      float64 // per-tuple predicate evaluation
	CPUProj      float64 // per-tuple projection
	HashBuild    float64 // per-tuple hash table insert
	HashProbe    float64 // per-tuple hash table probe
	SortFactor   float64 // multiplier on n·log2(n)
	NetTuple     float64 // per-tuple network transfer
	Materialize  float64 // per-tuple spool write+read
	IndexLookup  float64 // per-matching-tuple index access
	MaxSkew      float64 // cap on the skew multiplier
	NLJoinTuple  float64 // per-pair nested-loops evaluation
	SubPlanStart float64 // per-outer-row subplan startup overhead
}

// DefaultParams returns the calibrated defaults for the simulated engine.
func DefaultParams(segments int) Params {
	if segments < 1 {
		segments = 1
	}
	return Params{
		Segments:     segments,
		CPUTuple:     1.0,
		CPUPred:      0.6,
		CPUProj:      0.4,
		HashBuild:    1.6,
		HashProbe:    1.1,
		SortFactor:   1.0,
		NetTuple:     2.5,
		Materialize:  1.4,
		IndexLookup:  2.0,
		MaxSkew:      4.0,
		NLJoinTuple:  0.55,
		SubPlanStart: 12.0,
	}
}

// Model computes operator costs.
type Model struct {
	P Params
}

// NewModel builds a model over the given parameters.
func NewModel(p Params) *Model { return &Model{P: p} }

// Inputs carries everything the per-operator formulas need.
type Inputs struct {
	// OutRows is the estimated output cardinality of the operator.
	OutRows float64
	// ChildRows holds the estimated output cardinality of each child.
	ChildRows []float64
	// Delivered is the operator's delivered physical properties.
	Delivered props.Derived
	// Skew multiplies distributed work (1 = uniform); the optimizer derives
	// it from the histogram of the hashing column for motions.
	Skew float64
}

// parallelism returns the divisor for work performed under the given
// distribution.
func (m *Model) parallelism(d props.Distribution) float64 {
	if d.Kind == props.DistSingleton {
		return 1
	}
	return float64(m.P.Segments)
}

// childRowsAt returns the cardinality of the i'th child, or 0 when the
// estimate vector is short. A package function rather than a per-call
// closure: LocalCost runs once per candidate and must not allocate.
func childRowsAt(rows []float64, i int) float64 {
	if i < len(rows) {
		return rows[i]
	}
	return 0
}

// LocalCost returns the cost of the operator itself, excluding children.
//
//orcavet:hotpath runs once per candidate plan during Figure-6 optimization
func (m *Model) LocalCost(op ops.Operator, in Inputs) float64 {
	p := m.P
	skew := in.Skew
	if skew < 1 {
		skew = 1
	}
	if skew > p.MaxSkew {
		skew = p.MaxSkew
	}
	par := m.parallelism(in.Delivered.Dist)

	switch o := op.(type) {
	case *ops.Scan:
		rows := o.BaseRows
		if rows <= 0 {
			rows = in.OutRows
		}
		work := rows * p.CPUTuple
		if o.Filter != nil {
			work += rows * p.CPUPred
		}
		return work / par * skew

	case *ops.IndexScan:
		base := o.BaseRows
		if base < 2 {
			base = 2
		}
		work := in.OutRows*p.IndexLookup + math.Log2(base)*p.CPUTuple
		return work / par

	case *ops.Filter:
		return childRowsAt(in.ChildRows, 0) * p.CPUPred / par

	case *ops.ComputeScalar:
		return childRowsAt(in.ChildRows, 0) * p.CPUProj * float64(max(1, len(o.Elems))) / par

	case *ops.HashJoin:
		build := childRowsAt(in.ChildRows, 1) * p.HashBuild
		probe := childRowsAt(in.ChildRows, 0)*p.HashProbe + in.OutRows*p.CPUTuple
		if o.Residual != nil {
			probe += in.OutRows * p.CPUPred
		}
		return (build + probe) / par * skew

	case *ops.NLJoin:
		pairs := childRowsAt(in.ChildRows, 0) * childRowsAt(in.ChildRows, 1)
		return (pairs*p.NLJoinTuple + in.OutRows*p.CPUTuple) / par

	case *ops.HashAgg:
		return (childRowsAt(in.ChildRows, 0)*p.HashBuild + in.OutRows*p.CPUTuple) / par

	case *ops.StreamAgg:
		return (childRowsAt(in.ChildRows, 0)*p.CPUTuple + in.OutRows*p.CPUTuple) / par

	case *ops.ScalarAgg:
		return childRowsAt(in.ChildRows, 0) * p.CPUTuple / par

	case *ops.Sort:
		n := childRowsAt(in.ChildRows, 0) / par
		if n < 2 {
			n = 2
		}
		return n * math.Log2(n) * p.SortFactor

	case *ops.PhysicalLimit:
		return in.OutRows * p.CPUTuple

	case *ops.Gather:
		return childRowsAt(in.ChildRows, 0) * p.NetTuple

	case *ops.GatherMerge:
		return childRowsAt(in.ChildRows, 0) * (p.NetTuple + 0.2*p.CPUTuple)

	case *ops.Redistribute:
		return childRowsAt(in.ChildRows, 0) * p.NetTuple / par * skew

	case *ops.Broadcast:
		// Every segment receives the full input.
		return childRowsAt(in.ChildRows, 0) * p.NetTuple

	case *ops.Spool:
		return childRowsAt(in.ChildRows, 0) * p.Materialize / par

	case *ops.PhysicalUnionAll:
		var total float64
		for i := range in.ChildRows {
			total += childRowsAt(in.ChildRows, i)
		}
		return total * p.CPUTuple * 0.2 / par

	case *ops.Sequence:
		return 0

	case *ops.PhysicalCTEProducer:
		return childRowsAt(in.ChildRows, 0) * p.Materialize / par

	case *ops.PhysicalCTEConsumer:
		return in.OutRows * p.CPUTuple * 0.4 / par

	case *ops.PhysicalWindow:
		return childRowsAt(in.ChildRows, 0) * p.CPUTuple * float64(max(1, len(o.Wins))) / par

	case *ops.SubPlanFilter:
		return m.subPlanCost(childRowsAt(in.ChildRows, 0), o.Plan)

	case *ops.SubPlanProject:
		return m.subPlanCost(childRowsAt(in.ChildRows, 0), o.Plan)

	default:
		return in.OutRows * p.CPUTuple / par
	}
}

// subPlanCost charges one full subplan execution per outer row — the
// repeated-execution behaviour decorrelation exists to avoid.
func (m *Model) subPlanCost(outerRows float64, plan *ops.Expr) float64 {
	per := m.P.SubPlanStart
	if plan != nil {
		per += plan.Cost
	}
	return outerRows * per
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
