package plancache

import (
	"context"
	"sync"

	"orca/internal/gpos"
)

// CodeLeaderFailed is the gpos.Exception code every singleflight waiter
// receives when the flight's leader died — by error or by panic — before
// publishing an entry. Waiters must not trust a dead leader's outcome: the
// failure is surfaced as this typed error, nothing is cached, and the next
// request for the shape re-optimizes from scratch.
const CodeLeaderFailed = "PlanCacheLeaderFailed"

// FlightGroup coalesces concurrent cache misses on the same key: the first
// requester (the leader) runs the real optimization while later identical
// requests wait for its published entry instead of stampeding the scheduler
// with duplicate work. A flight's lifetime is one miss — the leader always
// deletes the flight on exit, so a failed flight leaves no residue and the
// next miss starts fresh.
type FlightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewFlightGroup returns an empty group.
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{flights: make(map[Key]*flight)}
}

// Do runs fn once per key per flight. The leader (leader=true) runs fn and
// its result is handed to every waiter that joined mid-flight. Waiters block
// until the leader publishes or their own ctx expires. Outcomes for waiters:
//
//   - entry != nil: the leader optimized and admitted a plan; use it.
//   - entry == nil, err == nil: the leader succeeded but the plan was not
//     cacheable (e.g. unparameterizable) — fall back to own optimization.
//   - err != nil: the leader failed; a CompOptimizer/CodeLeaderFailed
//     exception if it died without publishing (panic unwinding through the
//     containment boundary), otherwise the leader's own error.
//
// The leader publishes via defer, so even a panicking fn releases its
// waiters before the panic propagates; the panic itself is NOT swallowed —
// per-request containment is the caller's recover boundary.
func (g *FlightGroup) Do(ctx context.Context, k Key, fn func() (*Entry, error)) (entry *Entry, err error, leader bool) {
	g.mu.Lock()
	if f, ok := g.flights[k]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, f.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	f := &flight{
		done: make(chan struct{}),
		err: gpos.Raise(gpos.CompOptimizer, CodeLeaderFailed,
			"plan-cache flight leader died before publishing"),
	}
	g.flights[k] = f
	g.mu.Unlock()

	published := false
	defer func() {
		if !published {
			// fn panicked: f.err keeps the preset LeaderFailed exception.
			g.finish(k, f)
		}
	}()
	entry, err = fn()
	f.entry, f.err = entry, err
	published = true
	g.finish(k, f)
	return entry, err, true
}

// finish publishes the flight's outcome and retires it.
func (g *FlightGroup) finish(k Key, f *flight) {
	g.mu.Lock()
	delete(g.flights, k)
	g.mu.Unlock()
	close(f.done)
}
