package plancache

import (
	"sync"
	"sync/atomic"
	"testing"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/props"
)

// TestStressAdmitLookupMDBump hammers one cache from many goroutines with
// interleaved Admit/Lookup/InternReq traffic while the metadata version
// rotates underneath (the invalidation path: a bump makes every dependent
// key stop matching) and both plancache/* fault points are armed at low
// probability, so the distrust-and-discard path in Lookup races against
// admission and LRU eviction. Run under -race by check.sh's plancache race
// gate; the assertions are consistency-only because the interleaving is
// nondeterministic.
func TestStressAdmitLookupMDBump(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-goroutine stress loop")
	}
	specs, err := fault.ParseSpecs(
		fault.PointPlanCacheCorrupt + ":error:prob=0.05:seed=17," +
			fault.PointPlanCacheStale + ":error:prob=0.05:seed=29")
	if err != nil {
		t.Fatal(err)
	}
	disarm, err := fault.Arm(specs)
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	// A budget small enough that admission pressure keeps the LRU evicting
	// concurrently with the fault-driven discards.
	maxBytes := int64(numShards) * 4 * entrySizeBytes(testEntry(1))
	c := New(maxBytes)
	var mdVersion atomic.Int64
	mdVersion.Store(1)

	const (
		workers  = 8
		opsEach  = 3000
		keySpace = 96 // > 4 per shard on average, so eviction pressure is real
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vec := []base.Datum{base.NewInt(int64(w))}
			for i := 0; i < opsEach; i++ {
				fp := uint64((w*31 + i) % keySpace)
				r := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(base.ColID(fp%4 + 1))}
				id, ok := c.InternReq(r)
				if !ok {
					t.Errorf("InternReq refused far below the cap")
					return
				}
				k := Key{FP: fp, Req: id, Buckets: fp % 8, MDVersion: mdVersion.Load()}
				switch i % 4 {
				case 0:
					c.Admit(k, testEntry(1))
				case 1, 2:
					if e, hit := c.Lookup(k, vec); hit && e.NParams != 1 {
						t.Errorf("hit returned an entry with NParams=%d, want 1", e.NParams)
					}
				case 3:
					// The md-bump interleaving: worker 0 occasionally
					// invalidates everything; everyone else probes a key one
					// version behind, which must miss or hit consistently,
					// never crash or serve a mismatched entry.
					if w == 0 && i%500 == 250 {
						mdVersion.Add(1)
					} else {
						stale := k
						stale.MDVersion--
						c.Lookup(stale, vec)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("counters went negative: %+v", st)
	}
	if st.Bytes > maxBytes {
		t.Errorf("cache over budget after stress: %d > %d", st.Bytes, maxBytes)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("stress loop recorded no lookups")
	}
	if int64(c.Len()) != st.Entries {
		t.Errorf("Len()=%d disagrees with Stats().Entries=%d", c.Len(), st.Entries)
	}

	// With the faults disarmed the survivor must behave like a fresh cache:
	// admit, clean hit, no residual distrust.
	disarm()
	k := Key{FP: 7777, MDVersion: mdVersion.Load()}
	if !c.Admit(k, testEntry(0)) {
		// The key may collide with a survivor of the stress run; that is
		// first-writer-wins, not a failure.
		t.Logf("post-stress Admit kept an existing entry for %+v", k)
	}
	if _, ok := c.Lookup(k, nil); !ok {
		t.Error("cache wedged after stress: post-disarm lookup missed an admitted key")
	}
}
