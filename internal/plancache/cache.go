package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/ops"
	"orca/internal/props"
)

// numShards is the cache's shard fan-out; 64 matches the Memo's group hash
// tables, keeping lock contention negligible next to even a cache-hit
// request's other work.
const numShards = 64

// ReqID is an interned required-property identity (see Cache.InternReq). The
// Memo hands out dense ReqIDs per group; the plan cache needs one namespace
// across all shapes, so it interns Required values itself with full Equal
// verification — two requests map to the same ReqID iff the properties are
// exactly equal, never merely hash-equal.
type ReqID uint32

// Key identifies one cached plan: a shape fingerprint, the interned required
// properties the plan was optimized for, the selectivity-bucket hash of the
// producing constants, and the metadata version stamp observed when the plan
// was built. A metadata invalidation bumps the stamp, so every dependent
// entry stops matching — stale plans die by unreachability and are swept out
// by LRU pressure rather than by a scan.
type Key struct {
	FP        uint64
	Req       ReqID
	Buckets   uint64
	MDVersion int64
}

// Entry is one parameterized physical plan with the metadata needed to
// synthesize an optimization result on a hit without touching the scheduler.
type Entry struct {
	// Plan is the parameterized physical tree; every constant the producing
	// request supplied is replaced by an ops.Param ordinal into the request
	// vector. Shared by all hits — callers must Rebind, never mutate.
	Plan *ops.Expr
	// Cost is the producing optimization's best cost (approximate for later
	// hits — their constants differ within the same selectivity bucket).
	Cost float64
	// Stage names the search stage that produced the plan.
	Stage string
	// NParams is the length of the producing parameter vector; a hit with a
	// different vector length is structurally impossible and treated as a
	// corrupt entry.
	NParams int

	key  Key
	size int64
	elem *list.Element
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Entries   int64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*Entry
	lru     list.List // front = most recently used
	bytes   int64
}

// Cache is the sharded, size-accounted parameterized plan cache. Entries are
// evicted LRU per shard when the shard exceeds its share of the byte budget,
// and defensively when the plancache/* fault points fire on a hit (see
// Lookup).
type Cache struct {
	shards   [numShards]shard
	maxBytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64

	reqMu   sync.RWMutex
	reqByID []props.Required
	reqIdx  map[uint64][]ReqID
}

// New returns a cache bounded by maxBytes (shared across all shards).
// maxBytes <= 0 disables admission: lookups always miss and Admit is a no-op,
// so a disabled cache degrades to plain re-optimization everywhere.
func New(maxBytes int64) *Cache {
	c := &Cache{maxBytes: maxBytes, reqIdx: make(map[uint64][]ReqID)}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*Entry)
	}
	return c
}

// Enabled reports whether the cache can hold anything at all.
func (c *Cache) Enabled() bool { return c != nil && c.maxBytes > 0 }

// maxInternedReqs bounds the ReqID intern table. ReqIDs are never evicted —
// keys embed them, so recycling one would alias live cache entries — which
// means the table must be capped or a long-lived server receiving endlessly
// diverse ORDER BY shapes would leak memory outside the byte budget. Real
// workloads use a handful of distinct required-property sets; a shape that
// would mint an ID past the cap is simply not cacheable (InternReq reports
// ok=false and the caller optimizes uncached).
const maxInternedReqs = 4096

// InternReq maps required properties to a stable ReqID with exact-equality
// verification (hash collisions allocate distinct IDs). ok is false when the
// properties are not yet interned and the table is at maxInternedReqs — the
// caller must then skip the cache for this request.
func (c *Cache) InternReq(r props.Required) (ReqID, bool) {
	h := r.Hash()
	c.reqMu.RLock()
	for _, id := range c.reqIdx[h] {
		if c.reqByID[id].Equal(r) {
			c.reqMu.RUnlock()
			return id, true
		}
	}
	c.reqMu.RUnlock()
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	for _, id := range c.reqIdx[h] {
		if c.reqByID[id].Equal(r) {
			return id, true
		}
	}
	if len(c.reqByID) >= maxInternedReqs {
		return 0, false
	}
	id := ReqID(len(c.reqByID))
	c.reqByID = append(c.reqByID, r)
	c.reqIdx[h] = append(c.reqIdx[h], id)
	return id, true
}

func (c *Cache) shardFor(k Key) *shard { return &c.shards[k.FP&(numShards-1)] }

// Lookup probes for a plan matching the key and validates it against the
// request's parameter vector. The plancache/corrupt-entry and
// plancache/stale-version fault points fire here, after an entry is found:
// either firing makes the probe distrust the entry — it is evicted and the
// probe reports a miss — so under chaos a poisoned cache costs one
// re-optimization, never a wrong plan. The same discard path handles a
// genuinely inconsistent entry (parameter-count mismatch).
func (c *Cache) Lookup(k Key, vec []base.Datum) (*Entry, bool) {
	if !c.Enabled() {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	// Fault points run outside the shard lock: the delay action sleeps.
	if err := fault.Inject(fault.PointPlanCacheCorrupt); err == nil {
		err = fault.Inject(fault.PointPlanCacheStale)
		if err == nil && e.NParams != len(vec) {
			err = errParamCount
		}
		if err == nil {
			s.mu.Lock()
			// Revalidate under the lock — the entry may have been evicted or
			// replaced while the probes ran.
			if cur, still := s.entries[k]; still && cur == e {
				s.lru.MoveToFront(e.elem)
				s.mu.Unlock()
				c.hits.Add(1)
				return e, true
			}
			s.mu.Unlock()
			c.misses.Add(1)
			return nil, false
		}
	}
	c.discard(s, k, e)
	c.misses.Add(1)
	return nil, false
}

// errParamCount marks an entry whose parameter count no longer matches the
// shape's vector — impossible unless the entry is corrupt.
var errParamCount = &paramCountErr{}

type paramCountErr struct{}

func (*paramCountErr) Error() string { return "plancache: entry parameter count mismatch" }

// discard removes a distrusted entry if it is still the one that was probed.
func (c *Cache) discard(s *shard, k Key, e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.entries[k]; ok && cur == e {
		c.removeLocked(s, e)
		c.evictions.Add(1)
	}
}

// Admit inserts a parameterized plan. First writer wins: if the key is
// already present the existing entry is kept, so a singleflight race cannot
// flap the LRU. Admission policy — what must never be cached (degraded
// plans, aborted or timed-out stages, unparameterizable shapes) — is the
// caller's job, because only the caller sees the optimization outcome; the
// cache enforces only its byte budget, evicting least-recently-used entries
// of the admitting shard until it fits.
func (c *Cache) Admit(k Key, e *Entry) bool {
	if !c.Enabled() || e == nil || e.Plan == nil {
		return false
	}
	e.key = k
	e.size = entrySizeBytes(e)
	shardBudget := c.maxBytes / numShards
	if e.size > shardBudget {
		return false // a plan bigger than a whole shard would evict everything
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return false
	}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += e.size
	c.bytes.Add(e.size)
	c.entries.Add(1)
	for s.bytes > shardBudget {
		tail := s.lru.Back()
		if tail == nil || tail == e.elem {
			break
		}
		c.removeLocked(s, tail.Value.(*Entry))
		c.evictions.Add(1)
	}
	return true
}

func (c *Cache) removeLocked(s *shard, e *Entry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
	s.bytes -= e.size
	c.bytes.Add(-e.size)
	c.entries.Add(-1)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
	}
}

// Len returns the live entry count (for tests).
func (c *Cache) Len() int { return int(c.entries.Load()) }
