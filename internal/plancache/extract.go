// Package plancache is the parameterized plan cache that lets hot, repetitive
// traffic skip the Memo search entirely. "Query Optimization in the Wild"
// observes that industrial optimizers survive production traffic because the
// overwhelmingly repetitive query mix is absorbed by exactly this layer: a
// bound logical tree is normalized modulo constants (every literal extracted
// into an ordered parameter vector), the remaining shape is fingerprinted
// with the Memo's structural-hash scheme, and a 64-way sharded,
// size-accounted LRU keyed on (fingerprint, required-property ReqID,
// metadata-version stamp, selectivity buckets) maps the shape to a
// parameterized physical plan. A hit rebinds the request's own constants
// into the cached plan — microseconds instead of a scheduler run; a miss is
// coalesced through a singleflight group so a storm of one hard shape
// optimizes once.
//
// What is never cached: degraded plans, budget-aborted or timed-out stages
// (the admission decision belongs to the caller, see Cache.Admit's doc),
// shapes containing subqueries or bound subplans (pointer identity defeats
// structural fingerprinting), plans whose constants cannot all be
// value-matched back to the request's parameter vector, and plans whose
// producing vector holds two parameters with the same kind and value —
// value-matching cannot tell such sites apart once the optimizer has
// reordered them (see Parameterize).
package plancache

import (
	"orca/internal/base"
	"orca/internal/ops"
	"orca/internal/props"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// Shape is a query normalized modulo constants: the parameterized logical
// tree's structural fingerprint, the extracted constant vector in walk
// order, and the selectivity-bucket hash that splits shapes whose plan
// choice is constant-sensitive.
type Shape struct {
	// FP is the structural hash of the parameterized tree mixed with the
	// query's output columns — everything that determines the bound shape
	// except constant values and required properties.
	FP uint64
	// Vector is the extracted constants in deterministic walk order
	// (pre-order over the tree, operator scalars before children).
	Vector []base.Datum
	// Buckets hashes each vector entry's selectivity bucket; it is part of
	// the cache key so a parameter that flips the plan shape (a very
	// selective vs. a very wide range, a NULL vs. a value) gets its own
	// entry instead of reusing a plan optimized for different statistics.
	Buckets uint64
}

// Extract normalizes a bound logical tree modulo constants. ok is false when
// the shape is uncacheable: it contains a subquery or bound subplan, whose
// pointer-based identity cannot be fingerprinted structurally.
func Extract(tree *ops.Expr, order props.OrderSpec, outCols []base.ColID) (Shape, bool) {
	var vec []base.Datum
	cacheable := true
	leaf := func(s ops.ScalarExpr) ops.ScalarExpr {
		switch x := s.(type) {
		case *ops.Const:
			p := ops.NewParam(len(vec))
			vec = append(vec, x.Val)
			return p
		case *ops.Subquery:
			cacheable = false
		default:
			// Non-constant leaves (Ident, Param) pass through unchanged.
		}
		return s
	}
	shape, handled := rewriteTree(tree, leaf)
	if !handled || !cacheable {
		return Shape{}, false
	}
	fp := treeHash(shape)
	for _, c := range outCols {
		fp = hashMix(fp, uint64(c))
	}
	fp = hashMix(fp, order.Hash())
	return Shape{FP: fp, Vector: vec, Buckets: bucketsHash(vec)}, true
}

// Parameterize rewrites an optimized physical plan into its cacheable form:
// every constant is matched by value against the producing request's
// parameter vector and replaced with the corresponding Param. ok is false
// when any plan constant fails to match a vector entry — a constant the
// optimizer synthesized from literals would silently serve the producing
// request's value to every later hit, so such plans are refused outright.
//
// Value matching is only sound when every vector slot is distinguishable by
// value: the optimizer reorders constant sites (join reordering, predicate
// pushdown), so two slots holding the same kind and value (WHERE dept = 5
// AND id > 5) could have their ordinals swapped, and a later hit in the same
// selectivity buckets would rebind the wrong values into the wrong predicate
// sites. Such vectors are refused outright — the producing request is served
// normally, it just does not seed the cache. Requests with duplicate values
// can still *hit* entries seeded by duplicate-free producers: Rebind is
// purely ordinal-based.
func Parameterize(plan *ops.Expr, vec []base.Datum) (*ops.Expr, bool) {
	if hasAmbiguousSlots(vec) {
		return nil, false
	}
	ok := true
	leaf := func(s ops.ScalarExpr) ops.ScalarExpr {
		switch x := s.(type) {
		case *ops.Const:
			if i, found := matchParam(x.Val, vec); found {
				return ops.NewParam(i)
			}
			ok = false
		case *ops.Subquery:
			ok = false
		default:
			// Non-constant leaves pass through unchanged.
		}
		return s
	}
	out, handled := rewriteTree(plan, leaf)
	if !handled || !ok {
		return nil, false
	}
	return out, true
}

// hasAmbiguousSlots reports whether two vector slots hold the same kind and
// value, which makes value→ordinal matching ambiguous. Vectors are a handful
// of literals, so the quadratic scan is cheaper than hashing.
func hasAmbiguousSlots(vec []base.Datum) bool {
	for i := 1; i < len(vec); i++ {
		for j := 0; j < i; j++ {
			if vec[i].Kind == vec[j].Kind && vec[i].Equal(vec[j]) {
				return true
			}
		}
	}
	return false
}

// matchParam finds the vector slot holding exactly this value (same kind,
// equal value). Slots are unique by (kind, value) — Parameterize refuses
// ambiguous vectors — so the first match is the only match; predicate
// pushdown may legitimately duplicate a literal into several plan sites,
// which all map to that one slot.
func matchParam(d base.Datum, vec []base.Datum) (int, bool) {
	for i, v := range vec {
		if v.Kind == d.Kind && v.Equal(d) {
			return i, true
		}
	}
	return -1, false
}

// Rebind substitutes a request's constant vector into a parameterized plan,
// returning a fresh tree that shares unchanged (constant-free) subtrees with
// the cached one. ok is false if the plan references an ordinal outside the
// vector — a corrupt entry the caller must discard.
func Rebind(plan *ops.Expr, vec []base.Datum) (*ops.Expr, bool) {
	ok := true
	leaf := func(s ops.ScalarExpr) ops.ScalarExpr {
		if p, isParam := s.(*ops.Param); isParam {
			if p.Ord < 0 || p.Ord >= len(vec) {
				ok = false
				return s
			}
			return ops.NewConst(vec[p.Ord])
		}
		return s
	}
	out, handled := rewriteTree(plan, leaf)
	if !handled || !ok {
		return nil, false
	}
	return out, true
}

// rewriteTree applies a scalar-leaf rewrite over a whole expression tree in
// deterministic pre-order (operator scalars first, then children), sharing
// unchanged subtrees. handled is false when a node's operator carries scalar
// state the rewrite cannot reach (ops.RewriteOpScalars contract).
func rewriteTree(e *ops.Expr, leaf func(ops.ScalarExpr) ops.ScalarExpr) (*ops.Expr, bool) {
	rw := func(s ops.ScalarExpr) ops.ScalarExpr { return ops.RewriteScalarLeaves(s, leaf) }
	op, handled := ops.RewriteOpScalars(e.Op, rw)
	if !handled {
		return nil, false
	}
	children := e.Children
	var copied []*ops.Expr
	for i, c := range e.Children {
		nc, chandled := rewriteTree(c, leaf)
		if !chandled {
			return nil, false
		}
		if nc != c && copied == nil {
			copied = make([]*ops.Expr, len(e.Children))
			copy(copied, e.Children[:i])
		}
		if copied != nil {
			copied[i] = nc
		}
	}
	if copied != nil {
		children = copied
	}
	if op == e.Op && len(copied) == 0 {
		return e, true
	}
	out := *e
	out.Op = op
	out.Children = children
	return &out, true
}

// treeHash is the Memo's structural-hash scheme applied outside the Memo:
// post-order over the tree, each node contributing its operator's parameter
// hash (Params hash by ordinal, which is the whole point) mixed with its
// children's hashes in order.
func treeHash(e *ops.Expr) uint64 {
	h := hashMix(fnvOffset, e.Op.ParamHash())
	for _, c := range e.Children {
		h = hashMix(h, treeHash(c))
	}
	return h
}
