package plancache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orca/internal/gpos"
)

// TestFlightCoalesce is the singleflight satellite's core claim: N
// concurrent identical misses run the expensive function exactly once, with
// one leader and N-1 waiters all receiving the leader's entry. Run under
// -race by check.sh.
func TestFlightCoalesce(t *testing.T) {
	g := NewFlightGroup()
	k := Key{FP: 1}
	const n = 16

	var started sync.WaitGroup // every goroutine is about to call Do
	started.Add(n)
	var runs, leaders atomic.Int64
	want := testEntry(0)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			e, err, leader := g.Do(context.Background(), k, func() (*Entry, error) {
				// Hold the flight open until every goroutine has reached Do,
				// then a beat longer, so all N coalesce into this one run.
				started.Wait()
				time.Sleep(20 * time.Millisecond)
				runs.Add(1)
				return want, nil
			})
			if leader {
				leaders.Add(1)
			}
			if err != nil || e != want {
				t.Errorf("Do = (%v, %v), want the leader's entry", e, err)
			}
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want exactly 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Errorf("%d leaders, want exactly 1", got)
	}
	// The flight is retired: a later miss starts a fresh run.
	_, _, leader := g.Do(context.Background(), k, func() (*Entry, error) {
		runs.Add(1)
		return want, nil
	})
	if !leader || runs.Load() != 2 {
		t.Error("flight not retired after completion")
	}
}

// TestFlightLeaderError: a failing leader poisons nothing — waiters see the
// leader's error, and the next request re-runs from scratch.
func TestFlightLeaderError(t *testing.T) {
	g := NewFlightGroup()
	k := Key{FP: 2}
	boom := errors.New("optimize failed")

	var started sync.WaitGroup
	started.Add(8)
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			e, err, _ := g.Do(context.Background(), k, func() (*Entry, error) {
				started.Wait()
				time.Sleep(20 * time.Millisecond)
				runs.Add(1)
				return nil, boom
			})
			if e != nil || !errors.Is(err, boom) {
				t.Errorf("Do = (%v, %v), want (nil, %v)", e, err, boom)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", runs.Load())
	}
	// The failure was not cached as a flight: the next call runs again.
	_, err, leader := g.Do(context.Background(), k, func() (*Entry, error) {
		runs.Add(1)
		return testEntry(0), nil
	})
	if !leader || err != nil || runs.Load() != 2 {
		t.Errorf("post-failure call: leader=%v err=%v runs=%d", leader, err, runs.Load())
	}
}

// TestFlightLeaderPanic: a panicking leader still releases its waiters, who
// receive the typed CodeLeaderFailed exception; the panic itself propagates
// to the leader's own containment boundary.
func TestFlightLeaderPanic(t *testing.T) {
	g := NewFlightGroup()
	k := Key{FP: 3}

	entered := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		<-entered
		_, err, _ := g.Do(context.Background(), k, func() (*Entry, error) {
			t.Error("waiter became a second leader")
			return nil, nil
		})
		waited <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed")
			}
		}()
		g.Do(context.Background(), k, func() (*Entry, error) {
			close(entered)
			time.Sleep(20 * time.Millisecond)
			panic("mid-flight death")
		})
	}()

	select {
	case err := <-waited:
		ex := gpos.AsException(err)
		if ex == nil || ex.Code != CodeLeaderFailed {
			t.Errorf("waiter error = %v, want %s exception", err, CodeLeaderFailed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never released after leader panic")
	}
}

// TestFlightWaiterDeadline: a waiter's own context bounds its wait.
func TestFlightWaiterDeadline(t *testing.T) {
	g := NewFlightGroup()
	k := Key{FP: 4}
	entered := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), k, func() (*Entry, error) {
		close(entered)
		<-release
		return nil, nil
	})
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, leader := g.Do(ctx, k, func() (*Entry, error) { return nil, nil })
	if leader || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter under expired ctx: leader=%v err=%v", leader, err)
	}
	close(release)
}
