package plancache

import (
	"testing"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/ops"
	"orca/internal/props"
)

// testEntry fabricates a minimal admissible entry.
func testEntry(nParams int) *Entry {
	return &Entry{
		Plan:    &ops.Expr{Op: &ops.Limit{}},
		Cost:    42,
		Stage:   "main",
		NParams: nParams,
	}
}

func TestAdmitLookup(t *testing.T) {
	c := New(1 << 20)
	k := Key{FP: 7, Req: 0, Buckets: 9, MDVersion: 1}
	if _, ok := c.Lookup(k, nil); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Admit(k, testEntry(0)) {
		t.Fatal("Admit refused")
	}
	e, ok := c.Lookup(k, nil)
	if !ok || e.Cost != 42 {
		t.Fatalf("Lookup after Admit: %v, %v", e, ok)
	}
	// Any key component changing must miss.
	for _, miss := range []Key{
		{FP: 8, Req: 0, Buckets: 9, MDVersion: 1},
		{FP: 7, Req: 1, Buckets: 9, MDVersion: 1},
		{FP: 7, Req: 0, Buckets: 10, MDVersion: 1},
		{FP: 7, Req: 0, Buckets: 9, MDVersion: 2},
	} {
		if _, ok := c.Lookup(miss, nil); ok {
			t.Errorf("key %+v hit; want miss", miss)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 5 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v", st)
	}

	// First writer wins: a racing admit does not replace the entry.
	if c.Admit(k, testEntry(0)) {
		t.Error("second Admit of same key succeeded")
	}
}

func TestLookupParamCountMismatch(t *testing.T) {
	c := New(1 << 20)
	k := Key{FP: 3}
	c.Admit(k, testEntry(2))
	// A vector of the wrong length marks the entry corrupt: discarded, miss.
	if _, ok := c.Lookup(k, []base.Datum{base.NewInt(1)}); ok {
		t.Fatal("hit despite parameter-count mismatch")
	}
	if c.Len() != 0 {
		t.Errorf("corrupt entry not evicted: %d entries", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDisabledCache(t *testing.T) {
	c := New(0)
	if c.Enabled() {
		t.Fatal("zero-budget cache reports enabled")
	}
	k := Key{FP: 1}
	if c.Admit(k, testEntry(0)) {
		t.Error("disabled cache admitted an entry")
	}
	if _, ok := c.Lookup(k, nil); ok {
		t.Error("disabled cache hit")
	}
	var nilCache *Cache
	if nilCache.Enabled() {
		t.Error("nil cache reports enabled")
	}
	if st := nilCache.Stats(); st != (Stats{}) {
		t.Error("nil cache stats nonzero")
	}
}

// TestLRUEviction: the byte budget holds per shard, least-recently-used
// entries go first, and a recently touched entry survives.
func TestLRUEviction(t *testing.T) {
	// A budget small enough that a handful of entries overflow one shard.
	perShard := 4 * entrySizeBytes(testEntry(0))
	c := New(perShard * numShards)
	key := func(i int) Key { return Key{FP: uint64(i) << 6} } // all land in shard 0
	c.Admit(key(0), testEntry(0))
	c.Admit(key(1), testEntry(0))
	c.Admit(key(2), testEntry(0))
	// Touch 0 so 1 becomes the LRU victim when pressure arrives.
	if _, ok := c.Lookup(key(0), nil); !ok {
		t.Fatal("warm entry missing")
	}
	c.Admit(key(3), testEntry(0))
	c.Admit(key(4), testEntry(0))
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.Bytes > perShard {
		t.Errorf("shard over budget: %d > %d", st.Bytes, perShard)
	}
	if _, ok := c.Lookup(key(0), nil); !ok {
		t.Error("recently used entry evicted before LRU")
	}
	if _, ok := c.Lookup(key(1), nil); ok {
		t.Error("LRU entry survived pressure")
	}

	// An entry bigger than a whole shard is refused outright.
	big := testEntry(0)
	for i := 0; i < 400; i++ {
		big.Plan = &ops.Expr{Op: &ops.Limit{}, Children: []*ops.Expr{big.Plan}}
	}
	if c.Admit(Key{FP: 99 << 6}, big) {
		t.Error("entry larger than shard budget admitted")
	}
}

func TestInternReq(t *testing.T) {
	c := New(1 << 20)
	r1 := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(1)}
	r2 := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(1)}
	r3 := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(2)}
	id1, ok1 := c.InternReq(r1)
	id2, ok2 := c.InternReq(r2)
	id3, ok3 := c.InternReq(r3)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("InternReq refused below the cap: %v %v %v", ok1, ok2, ok3)
	}
	if id1 != id2 {
		t.Error("equal requests interned differently")
	}
	if id1 == id3 {
		t.Error("different requests share a ReqID")
	}
}

// TestInternReqBounded: ReqIDs are permanent — keys embed them, so recycling
// would alias live entries — which means the table must be capped or a
// stream of endlessly diverse ORDER BY shapes would leak memory outside the
// byte budget. Past the cap, new property sets are refused (the caller skips
// the cache) while already-interned ones keep resolving.
func TestInternReqBounded(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < maxInternedReqs; i++ {
		r := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(base.ColID(i + 1))}
		if _, ok := c.InternReq(r); !ok {
			t.Fatalf("intern %d refused below the cap", i)
		}
	}
	over := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(base.ColID(maxInternedReqs + 1))}
	if _, ok := c.InternReq(over); ok {
		t.Error("intern past the cap minted a new ReqID")
	}
	known := props.Required{Dist: props.SingletonDist, Order: props.MakeOrder(base.ColID(1))}
	if _, ok := c.InternReq(known); !ok {
		t.Error("already-interned request refused at the cap")
	}
}

// TestLookupFaultDiscard: the plancache/* chaos points make a found entry
// untrustworthy — the probe must evict it and report a miss, never serve it.
func TestLookupFaultDiscard(t *testing.T) {
	for _, point := range []string{fault.PointPlanCacheCorrupt, fault.PointPlanCacheStale} {
		t.Run(point, func(t *testing.T) {
			specs, err := fault.ParseSpecs(point + ":error:every=1")
			if err != nil {
				t.Fatal(err)
			}
			disarm, err := fault.Arm(specs)
			if err != nil {
				t.Fatal(err)
			}
			defer disarm()

			c := New(1 << 20)
			k := Key{FP: 5}
			c.Admit(k, testEntry(0))
			if _, ok := c.Lookup(k, nil); ok {
				t.Fatal("served a distrusted entry under fault")
			}
			if c.Len() != 0 {
				t.Errorf("distrusted entry not evicted: %d entries", c.Len())
			}
			disarm()
			// Post-fault the cache works again: re-admit, clean hit.
			c.Admit(k, testEntry(0))
			if _, ok := c.Lookup(k, nil); !ok {
				t.Error("miss after faults disarmed")
			}
		})
	}
}
