package plancache

import (
	"math"

	"orca/internal/base"
)

// Selectivity bucketing: two requests with the same shape may still deserve
// different plans when a constant's magnitude swings the optimizer's
// cardinality estimates (a predicate on id < 10 vs. id < 10_000_000 can flip
// an index scan into a table scan). Hashing every constant's exact value into
// the key would defeat the cache entirely, so each parameter contributes only
// its coarse bucket: NULLs and booleans are their own buckets (they change
// predicate semantics outright), integers and floats bucket by sign and
// binary order of magnitude, strings by length order of magnitude. Values in
// the same bucket produce close-enough estimates to share a plan; values in
// different buckets get separate cache entries.

// bucketOf maps one constant to its selectivity bucket.
func bucketOf(d base.Datum) uint64 {
	switch d.Kind {
	case base.DNull:
		return 0
	case base.DBool:
		if d.I != 0 {
			return 1
		}
		return 2
	case base.DInt:
		return signedMagnitude(d.I)
	case base.DFloat:
		f := d.F
		if math.IsNaN(f) {
			return 3
		}
		if f > math.MinInt64 && f < math.MaxInt64 {
			return signedMagnitude(int64(f))
		}
		if f < 0 {
			return 4
		}
		return 5
	case base.DString:
		// Strings rarely drive range selectivity; only their length scale
		// (empty vs. short key vs. long blob) moves estimates.
		return 100 + uint64(bitLen(uint64(len(d.S))))
	default:
		return 6
	}
}

// signedMagnitude buckets an integer by sign and bit length: 0 is its own
// bucket, then ±[1,1], ±[2,3], ±[4,7], ... — 64 buckets per sign.
func signedMagnitude(v int64) uint64 {
	if v == 0 {
		return 10
	}
	if v > 0 {
		return 200 + uint64(bitLen(uint64(v)))
	}
	return 300 + uint64(bitLen(uint64(-(v+1))+1))
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// bucketsHash folds the per-parameter buckets, in vector order, into one key
// component.
func bucketsHash(vec []base.Datum) uint64 {
	h := uint64(fnvOffset)
	for _, d := range vec {
		h = hashMix(h, bucketOf(d))
	}
	return h
}
