package plancache

import (
	"reflect"
	"unsafe"

	"orca/internal/ops"
)

// Real size accounting for cache entries, in the Memo's style (see
// memo/sizes.go): struct sizes via unsafe.Sizeof plus documented container
// overheads, not guessed magic numbers. The cache's byte budget is only as
// honest as these estimates — a cached plan is a whole operator tree, so the
// tree is walked and each node charged for its Expr shell, its child slots,
// and its concrete operator struct (reflected: operators are interface
// values whose dynamic types vary per node).
const (
	// mapEntryOverheadBytes approximates one map entry's share of bucket
	// memory beyond key+value.
	mapEntryOverheadBytes = 16
	// sliceSlotBytes is one pointer-sized slot in a container slice.
	sliceSlotBytes = int64(unsafe.Sizeof(uintptr(0)))
	// scalarNodeOverheadBytes is the flat per-node charge standing in for the
	// scalar expressions hanging off an operator (predicates, projection
	// elements); scalar trees are not walked, matching the Memo's treatment
	// of operators as opaque payloads.
	scalarNodeOverheadBytes = 64
	// listElemOverheadBytes is one container/list.Element (4 pointers + the
	// interface value it holds).
	listElemOverheadBytes = 6 * sliceSlotBytes
)

// entrySizeBytes is the accounted size of one cache entry: the Entry struct,
// its plan tree, and its share of the shard's map and LRU list.
func entrySizeBytes(e *Entry) int64 {
	return int64(unsafe.Sizeof(Entry{})) + int64(unsafe.Sizeof(Key{})) +
		mapEntryOverheadBytes + listElemOverheadBytes + planSizeBytes(e.Plan)
}

// planSizeBytes walks an operator tree charging each node.
func planSizeBytes(e *ops.Expr) int64 {
	if e == nil {
		return 0
	}
	sz := int64(unsafe.Sizeof(ops.Expr{})) + scalarNodeOverheadBytes
	if e.Op != nil {
		if t := reflect.TypeOf(e.Op); t.Kind() == reflect.Pointer {
			sz += int64(t.Elem().Size())
		}
	}
	for _, c := range e.Children {
		sz += sliceSlotBytes + planSizeBytes(c)
	}
	return sz
}
