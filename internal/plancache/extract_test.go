package plancache_test

import (
	"testing"

	"orca/internal/base"
	"orca/internal/core"
	"orca/internal/gpos"
	"orca/internal/md"
	"orca/internal/plancache"
	"orca/internal/sql"
)

// testCatalog is a two-table catalog with int and string columns so literal
// extraction can be exercised across datum kinds.
func testCatalog(t testing.TB) (*md.Accessor, *md.ColumnFactory) {
	t.Helper()
	p := md.NewMemProvider()
	md.Build(p, md.TableSpec{
		Name: "emp", Rows: 100, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100},
			{Name: "dept", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			{Name: "salary", Type: base.TFloat, NDV: 50, Lo: 0, Hi: 50000},
		},
	})
	md.Build(p, md.TableSpec{
		Name: "dept", Rows: 10, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10},
			{Name: "name", Type: base.TString, NDV: 10, Lo: 0, Hi: 10},
		},
	})
	return md.NewAccessor(md.NewCache(&gpos.MemoryAccountant{}), p), md.NewColumnFactory()
}

func bindQuery(t *testing.T, text string) *core.Query {
	t.Helper()
	acc, f := testCatalog(t)
	q, err := sql.Bind(text, acc, f)
	if err != nil {
		t.Fatalf("Bind(%q): %v", text, err)
	}
	return q
}

func extract(t *testing.T, text string) plancache.Shape {
	t.Helper()
	q := bindQuery(t, text)
	shape, ok := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !ok {
		t.Fatalf("Extract(%q): not cacheable", text)
	}
	return shape
}

// TestExtractShapeIdentity is the tentpole's keying property: queries that
// differ only in constant values collide on the same fingerprint (and the
// same selectivity buckets when the constants are of similar magnitude),
// while structural differences separate fingerprints.
func TestExtractShapeIdentity(t *testing.T) {
	a := extract(t, "SELECT id FROM emp WHERE dept = 600 AND id > 520")
	b := extract(t, "SELECT id FROM emp WHERE dept = 700 AND id > 800")
	if a.FP != b.FP {
		t.Errorf("same shape, different fingerprints: %x vs %x", a.FP, b.FP)
	}
	if a.Buckets != b.Buckets {
		t.Errorf("same-magnitude constants, different buckets: %x vs %x", a.Buckets, b.Buckets)
	}
	if len(a.Vector) != 2 || len(b.Vector) != 2 {
		t.Fatalf("vectors = %v, %v; want 2 constants each", a.Vector, b.Vector)
	}
	if !a.Vector[0].Equal(base.NewInt(600)) || !b.Vector[0].Equal(base.NewInt(700)) {
		t.Errorf("vector order not deterministic: %v vs %v", a.Vector, b.Vector)
	}

	c := extract(t, "SELECT id FROM emp WHERE dept = 600 OR id > 520")
	if c.FP == a.FP {
		t.Error("AND vs OR shapes share a fingerprint")
	}
	d := extract(t, "SELECT dept FROM emp WHERE dept = 600 AND id > 520")
	if d.FP == a.FP {
		t.Error("different output columns share a fingerprint")
	}
	e := extract(t, "SELECT id FROM emp WHERE dept = 600 AND id > 520 ORDER BY id")
	if e.FP == a.FP {
		t.Error("ordered and unordered queries share a fingerprint")
	}
}

// TestExtractBucketsSplit: constants whose magnitudes differ enough to swing
// selectivity estimates must land in different buckets, so they key separate
// cache entries.
func TestExtractBucketsSplit(t *testing.T) {
	small := extract(t, "SELECT id FROM emp WHERE id < 5")
	huge := extract(t, "SELECT id FROM emp WHERE id < 5000000")
	if small.FP != huge.FP {
		t.Fatalf("same shape, different fingerprints")
	}
	if small.Buckets == huge.Buckets {
		t.Error("5 and 5000000 share a selectivity bucket")
	}
	neg := extract(t, "SELECT id FROM emp WHERE id < -5")
	if neg.Buckets == small.Buckets {
		t.Error("-5 and 5 share a selectivity bucket")
	}
}

// TestLiteralRoundTrip is the literal-handling satellite: every literal kind
// — negative numbers above all, and strings with embedded quotes — must
// survive bind → parameter vector → rebind → re-extract with its exact value
// and kind, and its rendered form must re-parse to the same datum.
func TestLiteralRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want base.Datum
	}{
		{"positive int", "SELECT id FROM emp WHERE id = 42", base.NewInt(42)},
		{"negative int", "SELECT id FROM emp WHERE id = -3", base.NewInt(-3)},
		{"zero", "SELECT id FROM emp WHERE id = 0", base.NewInt(0)},
		{"positive float", "SELECT id FROM emp WHERE salary = 2.5", base.NewFloat(2.5)},
		{"negative float", "SELECT id FROM emp WHERE salary = -2.5", base.NewFloat(-2.5)},
		{"plain string", "SELECT name FROM dept WHERE name = 'eng'", base.NewString("eng")},
		{"empty string", "SELECT name FROM dept WHERE name = ''", base.NewString("")},
		{"embedded quote", "SELECT name FROM dept WHERE name = 'O''Brien'", base.NewString("O'Brien")},
		{"only quotes", "SELECT name FROM dept WHERE name = ''''", base.NewString("'")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := bindQuery(t, tc.sql)
			shape, ok := plancache.Extract(q.Tree, q.Order, q.OutCols)
			if !ok {
				t.Fatal("not cacheable")
			}
			if len(shape.Vector) != 1 {
				t.Fatalf("vector = %v, want exactly the literal", shape.Vector)
			}
			got := shape.Vector[0]
			if got.Kind != tc.want.Kind || !got.Equal(tc.want) {
				t.Fatalf("extracted %v (kind %d), want %v (kind %d)",
					got, got.Kind, tc.want, tc.want.Kind)
			}

			// Parameterize the tree against its own vector and rebind: the
			// result must re-extract to the identical shape and values.
			ptree, ok := plancache.Parameterize(q.Tree, shape.Vector)
			if !ok {
				t.Fatal("Parameterize refused the tree's own constants")
			}
			rebound, ok := plancache.Rebind(ptree, shape.Vector)
			if !ok {
				t.Fatal("Rebind failed")
			}
			again, ok := plancache.Extract(rebound, q.Order, q.OutCols)
			if !ok {
				t.Fatal("re-Extract failed")
			}
			if again.FP != shape.FP {
				t.Errorf("fingerprint changed across round trip: %x vs %x", again.FP, shape.FP)
			}
			if got2 := again.Vector[0]; got2.Kind != tc.want.Kind || !got2.Equal(tc.want) {
				t.Errorf("round-tripped literal %v, want %v", got2, tc.want)
			}

			// The rendered literal must re-parse to the same datum — this is
			// what breaks if string escaping or sign folding regresses.
			rendered := "SELECT id FROM emp WHERE id = " + tc.want.String()
			if tc.want.Kind == base.DString {
				rendered = "SELECT name FROM dept WHERE name = " + tc.want.String()
			}
			q2 := bindQuery(t, rendered)
			shape2, ok := plancache.Extract(q2.Tree, q2.Order, q2.OutCols)
			if !ok || len(shape2.Vector) != 1 {
				t.Fatalf("rendered literal %q did not extract cleanly", rendered)
			}
			if got2 := shape2.Vector[0]; got2.Kind != tc.want.Kind || !got2.Equal(tc.want) {
				t.Errorf("rendered %q re-bound to %v, want %v", tc.want.String(), got2, tc.want)
			}
		})
	}
}

// TestRebindDifferentConstants: a plan parameterized from one request must
// rebind cleanly under another request's constants — the cache-hit path.
func TestRebindDifferentConstants(t *testing.T) {
	q := bindQuery(t, "SELECT id FROM emp WHERE dept = 600 AND id > 520")
	shape, ok := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !ok {
		t.Fatal("not cacheable")
	}
	ptree, ok := plancache.Parameterize(q.Tree, shape.Vector)
	if !ok {
		t.Fatal("Parameterize failed")
	}
	q2 := bindQuery(t, "SELECT id FROM emp WHERE dept = 700 AND id > 800")
	shape2, ok := plancache.Extract(q2.Tree, q2.Order, q2.OutCols)
	if !ok {
		t.Fatal("not cacheable")
	}
	rebound, ok := plancache.Rebind(ptree, shape2.Vector)
	if !ok {
		t.Fatal("Rebind with second request's vector failed")
	}
	again, ok := plancache.Extract(rebound, q2.Order, q2.OutCols)
	if !ok {
		t.Fatal("re-Extract failed")
	}
	if !again.Vector[0].Equal(base.NewInt(700)) || !again.Vector[1].Equal(base.NewInt(800)) {
		t.Errorf("rebound constants = %v, want [700 800]", again.Vector)
	}

	// An out-of-range ordinal (corrupt entry) must be refused, not served.
	if _, ok := plancache.Rebind(ptree, shape2.Vector[:1]); ok {
		t.Error("Rebind accepted a truncated vector")
	}
}

// TestParameterizeRefusesDuplicateValues: a producing vector holding two
// parameters with the same kind and value must never seed the cache —
// Parameterize matches plan constants back to ordinals by value, and the
// optimizer reorders constant sites (join reordering, predicate pushdown),
// so equal-valued slots could have their ordinals swapped and a later hit
// would rebind the wrong values into the wrong predicate sites.
func TestParameterizeRefusesDuplicateValues(t *testing.T) {
	q := bindQuery(t, "SELECT id FROM emp WHERE dept = 5 AND id > 5")
	shape, ok := plancache.Extract(q.Tree, q.Order, q.OutCols)
	if !ok {
		t.Fatal("not cacheable")
	}
	if len(shape.Vector) != 2 || !shape.Vector[0].Equal(shape.Vector[1]) {
		t.Fatalf("vector = %v, want two equal constants", shape.Vector)
	}
	if _, ok := plancache.Parameterize(q.Tree, shape.Vector); ok {
		t.Error("Parameterize accepted an ambiguous duplicate-valued vector")
	}

	// Equal values of different kinds are not ambiguous: kind is part of the
	// match, so an int 1 and a float 1 stay distinguishable.
	q2 := bindQuery(t, "SELECT id FROM emp WHERE dept = 1 AND salary > 1.0")
	shape2, ok := plancache.Extract(q2.Tree, q2.Order, q2.OutCols)
	if !ok || len(shape2.Vector) != 2 {
		t.Fatalf("cross-kind query did not extract cleanly: %v", shape2.Vector)
	}
	if _, ok := plancache.Parameterize(q2.Tree, shape2.Vector); !ok {
		t.Error("Parameterize refused cross-kind equal values — only same-kind duplicates are ambiguous")
	}

	// A duplicate-valued request may still HIT an entry seeded by a
	// duplicate-free producer: Rebind is purely ordinal-based.
	seed := bindQuery(t, "SELECT id FROM emp WHERE dept = 6 AND id > 7")
	seedShape, ok := plancache.Extract(seed.Tree, seed.Order, seed.OutCols)
	if !ok || seedShape.FP != shape.FP {
		t.Fatalf("seed query not shape-equal: ok=%v", ok)
	}
	ptree, ok := plancache.Parameterize(seed.Tree, seedShape.Vector)
	if !ok {
		t.Fatal("Parameterize refused the duplicate-free seed")
	}
	rebound, ok := plancache.Rebind(ptree, shape.Vector)
	if !ok {
		t.Fatal("Rebind with the duplicate-valued vector failed")
	}
	again, ok := plancache.Extract(rebound, q.Order, q.OutCols)
	if !ok || again.FP != shape.FP {
		t.Fatalf("rebound tree changed shape: ok=%v", ok)
	}
	if !again.Vector[0].Equal(base.NewInt(5)) || !again.Vector[1].Equal(base.NewInt(5)) {
		t.Errorf("rebound constants = %v, want [5 5]", again.Vector)
	}
}

// TestExtractUncacheable: shapes whose identity is pointer-based (subqueries)
// must be refused outright rather than fingerprinted unstably.
func TestExtractUncacheable(t *testing.T) {
	q := bindQuery(t, "SELECT id FROM emp WHERE dept IN (SELECT id FROM dept)")
	if _, ok := plancache.Extract(q.Tree, q.Order, q.OutCols); ok {
		t.Error("subquery shape reported cacheable")
	}
}
