package md

import (
	"fmt"
	"sync"

	"orca/internal/base"
)

// ColRef is the optimizer's view of one query-level column instance: a
// ColID plus its name, type and (for base-table columns) the relation and
// attribute it came from. Distinct references to the same table column in one
// query (e.g. a self join) get distinct ColRefs, as in DXL's ColId scheme.
type ColRef struct {
	ID       base.ColID
	Name     string
	Type     base.TypeID
	RelMdid  MDId // invalid for computed columns
	Ordinal  int  // ordinal in the relation, -1 for computed columns
	Computed bool
}

// String renders "name(id)" for explains and debugging.
func (c *ColRef) String() string { return fmt.Sprintf("%s(%d)", c.Name, c.ID) }

// ColumnFactory allocates ColRefs for one optimization session. It is safe
// for concurrent use; decorrelation and CTE expansion rules allocate columns
// from scheduler workers.
type ColumnFactory struct {
	mu   sync.Mutex
	next base.ColID
	refs map[base.ColID]*ColRef
}

// NewColumnFactory returns a factory allocating ids from 0.
func NewColumnFactory() *ColumnFactory {
	return &ColumnFactory{refs: make(map[base.ColID]*ColRef)}
}

// NewTableColumn allocates a reference to a base-table column.
func (f *ColumnFactory) NewTableColumn(name string, typ base.TypeID, rel MDId, ordinal int) *ColRef {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref := &ColRef{ID: f.next, Name: name, Type: typ, RelMdid: rel, Ordinal: ordinal}
	f.refs[ref.ID] = ref
	f.next++
	return ref
}

// NewComputedColumn allocates a reference to a computed (projected or
// aggregated) column.
func (f *ColumnFactory) NewComputedColumn(name string, typ base.TypeID) *ColRef {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref := &ColRef{ID: f.next, Name: name, Type: typ, Ordinal: -1, Computed: true}
	f.refs[ref.ID] = ref
	f.next++
	return ref
}

// Register inserts a column reference with an explicit id (used when
// reconstructing a query from DXL, where ids are fixed by the document) and
// advances the allocator past it.
func (f *ColumnFactory) Register(ref *ColRef) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refs[ref.ID] = ref
	if ref.ID >= f.next {
		f.next = ref.ID + 1
	}
}

// Lookup returns the ColRef for an id, or nil.
func (f *ColumnFactory) Lookup(id base.ColID) *ColRef {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refs[id]
}

// Name returns the column's name, or "col<id>" when unknown.
func (f *ColumnFactory) Name(id base.ColID) string {
	if ref := f.Lookup(id); ref != nil {
		return ref.Name
	}
	return fmt.Sprintf("col%d", id)
}

// Count returns how many columns have been allocated.
func (f *ColumnFactory) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.refs)
}
