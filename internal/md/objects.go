package md

import (
	"fmt"

	"orca/internal/base"
)

// Object is any metadata object exchanged between a backend and the
// optimizer: types, relations, indexes and statistics. Objects are immutable
// once published to a provider; modifications produce a new version.
type Object interface {
	ID() MDId
	// SizeBytes is the logical size charged to the memory accountant when
	// the object enters the MD cache.
	SizeBytes() int64
}

// DistPolicy describes how a stored table is distributed across segments
// (paper §2.1): hashed on columns, replicated to every segment, randomly
// spread, or resident on a single host.
type DistPolicy uint8

// Distribution policies for stored relations.
const (
	DistHash DistPolicy = iota
	DistRandom
	DistReplicated
	DistSingleton
)

// String names the policy as serialized in DXL.
func (p DistPolicy) String() string {
	switch p {
	case DistHash:
		return "Hash"
	case DistRandom:
		return "Random"
	case DistReplicated:
		return "Replicated"
	case DistSingleton:
		return "Singleton"
	default:
		return fmt.Sprintf("DistPolicy(%d)", p)
	}
}

// Type is a scalar type's metadata. The optimizer asks whether values of the
// type can be redistributed (hashed) when planning motions.
type Type struct {
	Mdid              MDId
	Name              string
	Base              base.TypeID
	IsRedistributable bool
	Length            int
}

// ID implements Object.
func (t *Type) ID() MDId { return t.Mdid }

// SizeBytes implements Object.
func (t *Type) SizeBytes() int64 { return int64(48 + len(t.Name)) }

// Column describes one column of a relation.
type Column struct {
	Name     string
	Attno    int // 1-based attribute number
	TypeMdid MDId
	Type     base.TypeID
	Nullable bool
}

// Partition is one range partition of a partitioned table. Partitioning is
// always by range on a single column in this reproduction (the common
// TPC-DS pattern: facts partitioned by date key). Lo is inclusive, Hi is
// exclusive.
type Partition struct {
	Name string
	Lo   base.Datum
	Hi   base.Datum
}

// Contains reports whether v falls in the partition range.
func (p Partition) Contains(v base.Datum) bool {
	return p.Lo.Compare(v) <= 0 && v.Compare(p.Hi) < 0
}

// Relation is a stored table's metadata: schema, distribution and (optional)
// range partitioning. Statistics are separate objects (RelStats, ColStats) so
// that they can be refreshed — re-versioned — without touching the schema,
// mirroring the paper's split between Relation and RelStats dumps.
type Relation struct {
	Mdid      MDId
	Name      string
	Columns   []Column
	Policy    DistPolicy
	DistCols  []int // ordinals into Columns (for DistHash)
	PartCol   int   // ordinal of the partitioning column, -1 if not partitioned
	Parts     []Partition
	IndexIDs  []MDId
	StatsMdid MDId
}

// ID implements Object.
func (r *Relation) ID() MDId { return r.Mdid }

// SizeBytes implements Object.
func (r *Relation) SizeBytes() int64 {
	return int64(96 + len(r.Name) + 48*len(r.Columns) + 64*len(r.Parts))
}

// IsPartitioned reports whether the relation has range partitions.
func (r *Relation) IsPartitioned() bool { return r.PartCol >= 0 && len(r.Parts) > 0 }

// ColumnOrdinal returns the ordinal of the named column, or -1.
func (r *Relation) ColumnOrdinal(name string) int {
	for i := range r.Columns {
		if r.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// Index is a secondary index usable for IndexScan implementations that
// deliver sorted output without a Sort enforcer.
type Index struct {
	Mdid     MDId
	Name     string
	RelMdid  MDId
	KeyCols  []int // ordinals into the relation's columns
	IsUnique bool
}

// ID implements Object.
func (ix *Index) ID() MDId { return ix.Mdid }

// SizeBytes implements Object.
func (ix *Index) SizeBytes() int64 { return int64(64 + len(ix.Name)) }

// Bucket is one equi-depth histogram bucket over a column's value domain.
// Bounds project onto float64 (base.Datum.AsFloat) so that the estimator can
// interpolate within a bucket. Lo is inclusive; Hi is inclusive for the last
// bucket and exclusive otherwise.
type Bucket struct {
	Lo        base.Datum
	Hi        base.Datum
	Rows      float64 // tuples falling in the bucket
	Distincts float64 // distinct values in the bucket
}

// ColStats is the statistics object for one column of one relation: an
// equi-depth histogram plus NDV and null fraction. The optimizer's stats
// derivation (internal/stats) transforms these through operators.
type ColStats struct {
	ColName  string
	Ordinal  int
	NDV      float64
	NullFrac float64
	Buckets  []Bucket
}

// RelStats carries table-level statistics and the per-column histograms.
type RelStats struct {
	Mdid    MDId
	RelName string
	Rows    float64
	Cols    []ColStats
}

// ID implements Object.
func (s *RelStats) ID() MDId { return s.Mdid }

// SizeBytes implements Object.
func (s *RelStats) SizeBytes() int64 {
	n := int64(64)
	for i := range s.Cols {
		n += 48 + 40*int64(len(s.Cols[i].Buckets))
	}
	return n
}

// ColStatsFor returns the stats of the column at the given ordinal, or nil.
func (s *RelStats) ColStatsFor(ordinal int) *ColStats {
	for i := range s.Cols {
		if s.Cols[i].Ordinal == ordinal {
			return &s.Cols[i]
		}
	}
	return nil
}
