package md

import (
	"sync"
	"sync/atomic"

	"orca/internal/gpos"
)

// Cache is the optimizer-side metadata cache (paper §3, "Metadata Cache").
// Metadata changes infrequently, so shipping it with every query is wasted
// work; instead objects are fetched once through a provider and kept across
// optimization sessions. Entries are keyed by full MDId — object id plus
// version — so a version bump in the backend naturally misses the cache and
// the stale entry is evicted on the next lookup of the same object.
//
// Objects in the cache are pinned by accessors while an optimization session
// uses them, and unpinned when the session ends (or an error aborts it).
// Eviction skips pinned entries.
type Cache struct {
	mu      sync.Mutex
	entries map[MDId]*cacheEntry
	byOID   map[int64]MDId // latest cached version per object id
	mem     *gpos.MemoryAccountant

	hits   int64
	misses int64

	// version is the cache's monotonic invalidation stamp: it advances on
	// every mutation that can make previously derived state stale — a newer
	// object version displacing a cached one, or an explicit eviction sweep.
	// Purely additive inserts (an object cached for the first time) do NOT
	// bump it: nothing derived before could have referenced the object.
	// Consumers that key derived artifacts on metadata (the parameterized
	// plan cache) stamp their entries with Version(); a bump orphans every
	// dependent entry at lookup time.
	version atomic.Int64
}

type cacheEntry struct {
	obj  Object
	pins int
}

// NewCache returns an empty cache charging the given accountant (which may
// be nil).
func NewCache(mem *gpos.MemoryAccountant) *Cache {
	return &Cache{
		entries: make(map[MDId]*cacheEntry),
		byOID:   make(map[int64]MDId),
		mem:     mem,
	}
}

// Lookup returns the cached object and pins it, or reports a miss.
func (c *Cache) Lookup(id MDId) (Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e.pins++
	return e.obj, true
}

// Insert adds obj pinned once. If a different version of the same object id
// is cached and unpinned, it is evicted — it can never be requested again
// because requests carry exact versions.
func (c *Cache) Insert(obj Object) Object {
	id := obj.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		// Raced with another session fetching the same object.
		e.pins++
		return e.obj
	}
	if prev, ok := c.byOID[id.OID]; ok && prev != id {
		// A different version of this object is (or was) cached: plans and
		// other derived state built against it are now stale regardless of
		// whether the old entry can be dropped yet.
		c.version.Add(1)
		if e, ok := c.entries[prev]; ok && e.pins == 0 {
			delete(c.entries, prev)
			c.mem.Release(e.obj.SizeBytes())
		}
	}
	c.entries[id] = &cacheEntry{obj: obj, pins: 1}
	c.byOID[id.OID] = id
	c.mem.Charge(obj.SizeBytes())
	return obj
}

// Unpin releases one pin on the object.
func (c *Cache) Unpin(id MDId) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok && e.pins > 0 {
		e.pins--
	}
}

// Evict removes all unpinned entries and returns how many were dropped.
func (c *Cache) Evict() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, e := range c.entries {
		if e.pins == 0 {
			delete(c.entries, id)
			if c.byOID[id.OID] == id {
				delete(c.byOID, id.OID)
			}
			c.mem.Release(e.obj.SizeBytes())
			n++
		}
	}
	if n > 0 {
		c.version.Add(1)
	}
	return n
}

// Version returns the cache's monotonic invalidation stamp (see the field
// comment). It is safe to read concurrently with mutations.
func (c *Cache) Version() int64 { return c.version.Load() }

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
