package md

import "testing"

// TestCacheVersionCounter pins the invalidation-stamp semantics the
// parameterized plan cache keys on: purely additive inserts leave the stamp
// alone (nothing derived earlier could reference a brand-new object), while
// a newer object version displacing a cached one — and any eviction sweep —
// bumps it.
func TestCacheVersionCounter(t *testing.T) {
	p, rel := testRel(t)
	cache := NewCache(nil)
	if cache.Version() != 0 {
		t.Fatalf("fresh cache version = %d, want 0", cache.Version())
	}

	// Additive first insert: no bump.
	acc := NewAccessor(cache, p)
	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	v0 := cache.Version()
	if v0 != 0 {
		t.Errorf("additive insert bumped version to %d", v0)
	}
	acc.Close()

	// A backend DDL bumps the object version; re-resolving inserts the new
	// version, displacing the old entry — the stamp must advance.
	if _, err := p.BumpRelationVersion("t"); err != nil {
		t.Fatal(err)
	}
	if cache.Version() != v0 {
		t.Error("provider-side bump moved the stamp before the cache saw it")
	}
	acc2 := NewAccessor(cache, p)
	if _, err := acc2.RelationByName("t"); err != nil {
		t.Fatal(err)
	}
	v1 := cache.Version()
	if v1 <= v0 {
		t.Errorf("stale-displacing insert did not bump: %d -> %d", v0, v1)
	}
	acc2.Close()

	// An eviction sweep that drops anything also bumps.
	if n := cache.Evict(); n == 0 {
		t.Fatal("nothing evicted")
	}
	if cache.Version() <= v1 {
		t.Errorf("eviction sweep did not bump: %d", cache.Version())
	}
	v2 := cache.Version()

	// A sweep of an empty cache drops nothing and must not bump.
	if n := cache.Evict(); n != 0 {
		t.Fatalf("evicted %d from empty cache", n)
	}
	if cache.Version() != v2 {
		t.Errorf("no-op sweep bumped version to %d", cache.Version())
	}

	// MDVersion surfaces the stamp through the accessor (0 without a cache).
	acc3 := NewAccessor(cache, p)
	if acc3.MDVersion() != v2 {
		t.Errorf("accessor MDVersion = %d, want %d", acc3.MDVersion(), v2)
	}
	acc3.Close()
	if (&Accessor{}).MDVersion() != 0 {
		t.Error("cacheless accessor MDVersion != 0")
	}
}

// TestAccessorVersionSnapshot: MDVersionAtOpen freezes the stamp at accessor
// creation while MDVersion tracks the live counter. The gap between them is
// how the plan cache detects a bump landing anywhere in a session's
// bind→optimize window — including mid-bind, where the post-bind stamp alone
// looks perfectly fresh.
func TestAccessorVersionSnapshot(t *testing.T) {
	p, rel := testRel(t)
	cache := NewCache(nil)

	acc := NewAccessor(cache, p)
	if acc.MDVersionAtOpen() != acc.MDVersion() {
		t.Fatalf("fresh accessor: snapshot %d != live %d", acc.MDVersionAtOpen(), acc.MDVersion())
	}
	// The session's "bind": resolve and pin the relation.
	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}

	// A bump lands mid-session: a DDL in the backend plus another session
	// resolving the new version, displacing the cached one.
	if _, err := p.BumpRelationVersion("t"); err != nil {
		t.Fatal(err)
	}
	acc2 := NewAccessor(cache, p)
	if _, err := acc2.RelationByName("t"); err != nil {
		t.Fatal(err)
	}
	if acc.MDVersionAtOpen() == acc.MDVersion() {
		t.Error("mid-session bump invisible: snapshot still equals live stamp")
	}
	// acc2 itself opened before its own resolution triggered the bump, so it
	// too must report a straddled session — exactly the mid-bind case.
	if acc2.MDVersionAtOpen() == acc2.MDVersion() {
		t.Error("bump during acc2's own bind invisible to its snapshot")
	}
	acc2.Close()
	acc.Close()

	// A session opened after the dust settles sees snapshot == live again.
	acc3 := NewAccessor(cache, p)
	if acc3.MDVersionAtOpen() != acc3.MDVersion() {
		t.Error("post-bump accessor: snapshot != live stamp")
	}
	acc3.Close()
	if (&Accessor{}).MDVersionAtOpen() != 0 {
		t.Error("cacheless accessor MDVersionAtOpen != 0")
	}
}
