package md

import (
	"context"
	"testing"
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// slowProvider delays every lookup, cooperating with context cancellation.
type slowProvider struct {
	*MemProvider
	delay time.Duration
}

func (s *slowProvider) GetObject(ctx context.Context, id MDId) (Object, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.MemProvider.GetObject(ctx, id)
}

func (s *slowProvider) LookupRelation(ctx context.Context, name string) (MDId, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return MDId{}, ctx.Err()
	}
	return s.MemProvider.LookupRelation(ctx, name)
}

func wantTimeout(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("want lookup timeout, got nil error")
	}
	ex := gpos.AsException(err)
	if ex == nil {
		t.Fatalf("want gpos.Exception, got %T: %v", err, err)
	}
	if ex.Comp != gpos.CompMD || ex.Code != CodeLookupTimeout {
		t.Fatalf("want %s/%s, got %s/%s", gpos.CompMD, CodeLookupTimeout, ex.Comp, ex.Code)
	}
}

func TestLookupTimeoutSlowProvider(t *testing.T) {
	p, rel := testRel(t)
	slow := &slowProvider{MemProvider: p, delay: time.Second}
	acc := NewAccessor(NewCache(nil), slow)
	acc.SetLookupTimeout(10 * time.Millisecond)

	_, err := acc.Get(rel.Mdid)
	wantTimeout(t, err)

	_, err = acc.RelationByName("t")
	wantTimeout(t, err)
}

func TestLookupNoTimeoutByDefault(t *testing.T) {
	p, rel := testRel(t)
	// Zero timeout runs the lookup inline, however slow: use a small delay so
	// the test stays fast while proving no deadline applies.
	slow := &slowProvider{MemProvider: p, delay: 20 * time.Millisecond}
	acc := NewAccessor(NewCache(nil), slow)
	if _, err := acc.Get(rel.Mdid); err != nil {
		t.Fatalf("unbounded lookup failed: %v", err)
	}
}

func TestLookupTimeoutCacheHitUnaffected(t *testing.T) {
	p, rel := testRel(t)
	cache := NewCache(nil)
	warm := NewAccessor(cache, p)
	if _, err := warm.Get(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	// A second accessor with a hung provider still serves cache hits.
	acc := NewAccessor(cache, &slowProvider{MemProvider: p, delay: time.Hour})
	acc.SetLookupTimeout(10 * time.Millisecond)
	if _, err := acc.Get(rel.Mdid); err != nil {
		t.Fatalf("cache hit should not consult the provider: %v", err)
	}
}

// TestLookupTimeoutViaFaultDelay ties the fault framework to the timeout: an
// injected provider-fetch latency is subject to the lookup deadline because
// the fault point sits inside the timed call.
func TestLookupTimeoutViaFaultDelay(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{
		Point:  fault.PointMDProviderFetch,
		Action: fault.ActDelay,
		Delay:  time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	p, rel := testRel(t)
	acc := NewAccessor(NewCache(nil), p)
	acc.SetLookupTimeout(10 * time.Millisecond)
	_, err = acc.Get(rel.Mdid)
	wantTimeout(t, err)
}

func TestCacheLookupFaultPoint(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{
		Point:  fault.PointMDCacheLookup,
		Action: fault.ActError,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	p, rel := testRel(t)
	acc := NewAccessor(NewCache(nil), p)
	_, err = acc.Get(rel.Mdid)
	ex := gpos.AsException(err)
	if ex == nil || ex.Comp != gpos.CompMD || ex.Code != fault.CodeInjected {
		t.Fatalf("want injected %s fault, got %v", gpos.CompMD, err)
	}
}
