// Package md implements Orca's metadata exchange layer (paper §5): metadata
// ids (Mdids), the metadata objects the optimizer consumes (types, relations,
// indexes, relation and column statistics), the MD Provider plug-in
// interface, the versioned MD Cache, and the session-scoped MD Accessor that
// pins objects for the duration of one optimization.
//
// The optimizer never talks to a host system directly; it sees metadata only
// through an Accessor, which makes the optimizer portable across backends
// (GPDB, HAWQ, or a plain DXL file) exactly as the paper describes.
package md

import (
	"fmt"
	"strconv"
	"strings"
)

// MDId is a unique metadata identifier composed of a database system id, an
// object id and a version (major.minor), e.g. "0.688.1.1" — cf. paper §4.1.
// Versions invalidate cached metadata objects that were modified between
// queries.
type MDId struct {
	Sys   int32 // database system identifier
	OID   int64 // object identifier within the system
	Major int32 // version major
	Minor int32 // version minor
}

// NewMDId builds an MDId with version 1.0 in system 0 (the default system).
func NewMDId(oid int64) MDId { return MDId{Sys: 0, OID: oid, Major: 1, Minor: 0} }

// IsValid reports whether the id refers to an object (OID 0 is "no id").
func (id MDId) IsValid() bool { return id.OID != 0 }

// String renders the canonical dotted form used in DXL documents.
func (id MDId) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", id.Sys, id.OID, id.Major, id.Minor)
}

// Bumped returns the same object id at the next major version; the cache
// treats differing versions of one OID as distinct, stale entries.
func (id MDId) Bumped() MDId {
	id.Major++
	return id
}

// SameObject reports whether two ids name the same object, at any version.
func (id MDId) SameObject(o MDId) bool { return id.Sys == o.Sys && id.OID == o.OID }

// ParseMDId parses the dotted form. It accepts 2 components ("sys.oid",
// version defaults to 1.0) or the full 4-component form.
func ParseMDId(s string) (MDId, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 2 && len(parts) != 4 {
		return MDId{}, fmt.Errorf("md: malformed mdid %q", s)
	}
	nums := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return MDId{}, fmt.Errorf("md: malformed mdid %q: %v", s, err)
		}
		nums[i] = v
	}
	id := MDId{Sys: int32(nums[0]), OID: nums[1], Major: 1, Minor: 0}
	if len(parts) == 4 {
		id.Major = int32(nums[2])
		id.Minor = int32(nums[3])
	}
	return id, nil
}
