package md

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Provider is the plug-in interface a backend system registers so the
// optimizer can fetch metadata (paper §5, Figure 9). Implementations exist
// for the simulated MPP engine (a live catalog), for DXL files
// (internal/dxl.FileProvider, used by AMPERe replay and stand-alone runs),
// and for tests.
//
// Providers must be safe for concurrent use: parallel statistics-derivation
// jobs fetch metadata from multiple workers.
//
// Lookups take a context: a real backend provider talks to a catalog server
// and must honor cancellation, and the Accessor enforces the session's
// per-lookup timeout (core.Config.MDLookupTimeout) through it so a hung
// provider fails the lookup instead of hanging the whole optimization.
// In-memory providers may ignore the context beyond an initial ctx.Err()
// check.
type Provider interface {
	// GetObject returns the metadata object with the given id. The provider
	// must return the object whose version matches id exactly; a lookup of a
	// stale version fails with ErrNotFound.
	GetObject(ctx context.Context, id MDId) (Object, error)

	// LookupRelation resolves a relation name to its current Mdid.
	LookupRelation(ctx context.Context, name string) (MDId, error)

	// RelationNames lists all relation names, for harvesting and tooling.
	RelationNames() []string
}

// ErrNotFound reports a failed metadata lookup.
type ErrNotFound struct {
	What string
}

// Error implements the error interface.
func (e *ErrNotFound) Error() string { return fmt.Sprintf("md: %s not found", e.What) }

// NotFound builds an ErrNotFound.
func NotFound(format string, args ...any) error {
	return &ErrNotFound{What: fmt.Sprintf(format, args...)}
}

// MemProvider is an in-memory Provider, the registration point used by the
// simulated engine's catalog, by the data generator and by tests. It is also
// the target into which DXL metadata documents are materialized.
type MemProvider struct {
	mu      sync.RWMutex
	objects map[MDId]Object
	byName  map[string]MDId
	nextOID int64
}

// NewMemProvider returns an empty provider. OIDs allocated by AddRelation
// start at 1000 to keep them visually distinct from column ids in dumps.
func NewMemProvider() *MemProvider {
	return &MemProvider{
		objects: make(map[MDId]Object),
		byName:  make(map[string]MDId),
		nextOID: 1000,
	}
}

// AllocOID reserves a fresh object id.
func (p *MemProvider) AllocOID() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextOID++
	return p.nextOID
}

// Put registers (or replaces) a metadata object under its id.
func (p *MemProvider) Put(obj Object) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.objects[obj.ID()] = obj
	if r, ok := obj.(*Relation); ok {
		p.byName[r.Name] = r.Mdid
	}
}

// GetObject implements Provider. The in-memory catalog never blocks, so the
// context is only checked for prior cancellation.
func (p *MemProvider) GetObject(ctx context.Context, id MDId) (Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	obj, ok := p.objects[id]
	if !ok {
		return nil, NotFound("object %s", id)
	}
	return obj, nil
}

// LookupRelation implements Provider.
func (p *MemProvider) LookupRelation(ctx context.Context, name string) (MDId, error) {
	if err := ctx.Err(); err != nil {
		return MDId{}, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	id, ok := p.byName[name]
	if !ok {
		return MDId{}, NotFound("relation %q", name)
	}
	return id, nil
}

// RelationNames implements Provider.
func (p *MemProvider) RelationNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.byName))
	for n := range p.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Objects returns a snapshot of all registered objects, ordered by id, for
// harvesting into DXL.
func (p *MemProvider) Objects() []Object {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Object, 0, len(p.objects))
	for _, o := range p.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID(), out[j].ID()
		if a.OID != b.OID {
			return a.OID < b.OID
		}
		return a.Major < b.Major
	})
	return out
}

// BumpRelationVersion re-registers the named relation under a bumped version
// and removes the old version, simulating a DDL/ANALYZE change that must
// invalidate cached metadata (paper §4.1: "metadata versions are used to
// invalidate cached metadata objects").
func (p *MemProvider) BumpRelationVersion(name string) (MDId, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.byName[name]
	if !ok {
		return MDId{}, NotFound("relation %q", name)
	}
	rel, ok := p.objects[id].(*Relation)
	if !ok {
		return MDId{}, NotFound("relation object %s", id)
	}
	clone := *rel
	clone.Mdid = rel.Mdid.Bumped()
	delete(p.objects, id)
	p.objects[clone.Mdid] = &clone
	p.byName[name] = clone.Mdid
	return clone.Mdid, nil
}
