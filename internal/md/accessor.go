package md

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orca/internal/fault"
	"orca/internal/gpos"
)

// CodeLookupTimeout is the gpos.Exception code raised when a provider lookup
// exceeds the session's per-lookup timeout.
const CodeLookupTimeout = "LookupTimeout"

// CodeLookupCancelled is the gpos.Exception code raised when the session's
// base context (bound with Accessor.BindContext) is cancelled while a
// provider lookup is in flight.
const CodeLookupCancelled = "LookupCancelled"

// Accessor mediates all metadata access for one optimization session (paper
// §5, Figure 9). It keeps track of every object pinned during the session
// and releases them all when the session completes or aborts; it fetches
// objects transparently from the session's external provider when the shared
// cache misses. Different concurrent sessions may use different providers
// against the same cache.
//
// The accessor also records which objects the session touched, which is what
// AMPERe harvests into a minimal repro dump (paper §6.1: "the dump captures
// the state of MD Cache which includes only the metadata acquired during the
// course of query optimization").
type Accessor struct {
	cache    *Cache
	provider Provider
	timeout  time.Duration
	retry    RetryPolicy
	ctx      context.Context

	// openVersion is the cache's invalidation stamp at accessor creation —
	// i.e. before the session's bind phase reads any metadata. See
	// MDVersionAtOpen.
	openVersion int64

	retries atomic.Int64

	mu      sync.Mutex
	pinned  map[MDId]int
	touched []MDId
}

// NewAccessor opens a session-scoped accessor over the shared cache and the
// session's provider. The session context defaults to context.Background();
// hosts that carry a request context bind it with BindContext so provider
// lookups inherit the request's cancellation.
func NewAccessor(cache *Cache, provider Provider) *Accessor {
	a := &Accessor{
		cache:    cache,
		provider: provider,
		ctx:      context.Background(),
		pinned:   make(map[MDId]int),
	}
	if cache != nil {
		a.openVersion = cache.Version()
	}
	return a
}

// BindContext attaches the session's base context: every provider lookup
// derives its per-lookup deadline from ctx, so cancelling the request
// cancels in-flight metadata fetches. Must be called before optimization
// starts; a nil ctx keeps the current binding.
func (a *Accessor) BindContext(ctx context.Context) {
	if ctx != nil {
		a.ctx = ctx
	}
}

// SetLookupTimeout bounds each provider lookup (cache misses and name
// resolution). Zero means unlimited. A lookup exceeding the bound fails with
// a CompMD gpos.Exception (CodeLookupTimeout) so a hung or slow provider
// fails one metadata access — and through it, at worst, one optimization
// stage — instead of hanging the session.
func (a *Accessor) SetLookupTimeout(d time.Duration) { a.timeout = d }

// SetRetryPolicy arms retry-with-backoff for transient provider lookups
// (see RetryPolicy). The zero policy — the default — disables retry. With
// retry enabled, each attempt still runs under the per-lookup timeout, and
// the whole loop is budgeted by the session's base context.
func (a *Accessor) SetRetryPolicy(p RetryPolicy) { a.retry = p }

// LookupRetries reports how many provider-lookup retries this session has
// performed — transient failures that were absorbed by the retry loop
// rather than surfaced. The serving tier aggregates this into /varz.
func (a *Accessor) LookupRetries() int64 { return a.retries.Load() }

// MDVersion returns the shared metadata cache's monotonic invalidation stamp
// as observed by this session (see Cache.Version). Derived artifacts keyed
// on metadata — cached plans above all — record this stamp and are orphaned
// by any later bump.
func (a *Accessor) MDVersion() int64 {
	if a.cache == nil {
		return 0
	}
	return a.cache.Version()
}

// MDVersionAtOpen returns the invalidation stamp snapshotted when the
// accessor was created — before any of the session's metadata reads,
// including the bind phase's. A derived artifact is only coherent if no bump
// landed anywhere in its production window; since the stamp is monotonic,
// MDVersion() == MDVersionAtOpen() at admission time proves exactly that.
// Checking only the post-bind stamp is not enough: a bump landing mid-bind
// would leave a tree bound against old metadata carrying a fresh stamp.
func (a *Accessor) MDVersionAtOpen() int64 { return a.openVersion }

// Get returns the metadata object with the given id, fetching it through the
// provider on a cache miss and pinning it for the session.
func (a *Accessor) Get(id MDId) (Object, error) {
	if !id.IsValid() {
		return nil, NotFound("invalid mdid %s", id)
	}
	if err := fault.Inject(fault.PointMDCacheLookup); err != nil {
		return nil, err
	}
	obj, ok := a.cache.Lookup(id)
	if !ok {
		fetched, err := a.fetchObject(id)
		if err != nil {
			return nil, err
		}
		obj = a.cache.Insert(fetched)
	}
	a.mu.Lock()
	a.pinned[id]++
	if a.pinned[id] == 1 {
		a.touched = append(a.touched, id)
	}
	a.mu.Unlock()
	return obj, nil
}

// fetchObject retrieves an object from the provider under the session's
// lookup timeout and retry policy.
func (a *Accessor) fetchObject(id MDId) (Object, error) {
	return timedLookup(a, fmt.Sprintf("object %s", id), func(ctx context.Context) (Object, error) {
		if err := fault.Inject(fault.PointMDProviderFetch); err != nil {
			return nil, err
		}
		return a.provider.GetObject(ctx, id)
	})
}

// timedLookup runs a provider call under the session's base context, retry
// policy and per-attempt timeout. Each attempt is deadline-bounded by
// attemptLookup; failures classified transient by IsTransient are retried
// with exponential backoff and jitter until the attempt budget, the base
// context, or its deadline runs out — whichever comes first — so a flaky
// catalog backend costs latency, not the query. Terminal failures surface
// immediately. The serve/md/transient-error fault point fires before each
// attempt and injects an explicitly transient failure, exercising the retry
// machinery end to end under the chaos gate.
func timedLookup[T any](a *Accessor, what string, call func(context.Context) (T, error)) (T, error) {
	var zero T
	var last error
	attempts := a.retry.attempts()
	for attempt := 1; ; attempt++ {
		if err := fault.Inject(fault.PointServeMDTransient); err != nil {
			last = Transient(err)
		} else {
			v, err := attemptLookup(a.ctx, a.timeout, what, call)
			if err == nil {
				return v, nil
			}
			last = err
		}
		if attempt >= attempts || !IsTransient(last) {
			return zero, last
		}
		if !backoffWait(a.ctx, a.retry.backoff(attempt)) {
			// The request deadline expired (or would expire mid-backoff):
			// the retry budget is spent, surface the last transient failure.
			return zero, last
		}
		a.retries.Add(1)
	}
}

// attemptLookup runs one provider call under the base context, bounding it
// by the timeout (0 = unbounded, called inline). With a timeout the call
// runs on its own goroutine and the caller abandons it once the deadline
// passes — the derived context is cancelled so a cooperative provider stops
// promptly, but a provider that ignores cancellation leaks its goroutine
// until it returns, which is the price of not hanging the optimization.
// Cancelling the base context cancels the lookup either way.
func attemptLookup[T any](base context.Context, timeout time.Duration, what string, call func(context.Context) (T, error)) (T, error) {
	if timeout <= 0 {
		return call(base)
	}
	ctx, cancel := context.WithTimeout(base, timeout)
	defer cancel()
	type result struct {
		val T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := call(ctx)
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.val, r.err
	case <-ctx.Done():
		var zero T
		if base.Err() != nil {
			return zero, gpos.Raise(gpos.CompMD, CodeLookupCancelled,
				"metadata lookup of %s cancelled: %v", what, base.Err())
		}
		return zero, gpos.Raise(gpos.CompMD, CodeLookupTimeout,
			"metadata lookup of %s exceeded %v", what, timeout)
	}
}

// Relation returns the relation with the given id.
func (a *Accessor) Relation(id MDId) (*Relation, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	rel, ok := obj.(*Relation)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not a relation", id, obj)
	}
	return rel, nil
}

// RelationByName resolves and returns a relation by name.
func (a *Accessor) RelationByName(name string) (*Relation, error) {
	id, err := timedLookup(a, fmt.Sprintf("relation %q", name), func(ctx context.Context) (MDId, error) {
		return a.provider.LookupRelation(ctx, name)
	})
	if err != nil {
		return nil, err
	}
	return a.Relation(id)
}

// Stats returns the statistics object for a relation. Statistics are loaded
// on demand — during the statistics-derivation step, not at bind time —
// matching the paper's lazy histogram loading (§4.1 step 2).
func (a *Accessor) Stats(id MDId) (*RelStats, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	st, ok := obj.(*RelStats)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not relation stats", id, obj)
	}
	return st, nil
}

// Type returns a scalar type object.
func (a *Accessor) Type(id MDId) (*Type, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	t, ok := obj.(*Type)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not a type", id, obj)
	}
	return t, nil
}

// Index returns an index object.
func (a *Accessor) Index(id MDId) (*Index, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	ix, ok := obj.(*Index)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not an index", id, obj)
	}
	return ix, nil
}

// Touched returns the ids of all objects accessed in this session, in first-
// touch order. AMPERe serializes exactly these into a dump.
func (a *Accessor) Touched() []MDId {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]MDId, len(a.touched))
	copy(out, a.touched)
	return out
}

// Close unpins everything the session pinned. The accessor must not be used
// afterwards.
func (a *Accessor) Close() {
	a.mu.Lock()
	pinned := a.pinned
	a.pinned = map[MDId]int{}
	a.mu.Unlock()
	for id, n := range pinned {
		for i := 0; i < n; i++ {
			a.cache.Unpin(id)
		}
	}
}

// Provider exposes the session's provider (for name resolution in binders).
func (a *Accessor) Provider() Provider { return a.provider }
