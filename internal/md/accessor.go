package md

import (
	"fmt"
	"sync"
)

// Accessor mediates all metadata access for one optimization session (paper
// §5, Figure 9). It keeps track of every object pinned during the session
// and releases them all when the session completes or aborts; it fetches
// objects transparently from the session's external provider when the shared
// cache misses. Different concurrent sessions may use different providers
// against the same cache.
//
// The accessor also records which objects the session touched, which is what
// AMPERe harvests into a minimal repro dump (paper §6.1: "the dump captures
// the state of MD Cache which includes only the metadata acquired during the
// course of query optimization").
type Accessor struct {
	cache    *Cache
	provider Provider

	mu      sync.Mutex
	pinned  map[MDId]int
	touched []MDId
}

// NewAccessor opens a session-scoped accessor over the shared cache and the
// session's provider.
func NewAccessor(cache *Cache, provider Provider) *Accessor {
	return &Accessor{
		cache:    cache,
		provider: provider,
		pinned:   make(map[MDId]int),
	}
}

// Get returns the metadata object with the given id, fetching it through the
// provider on a cache miss and pinning it for the session.
func (a *Accessor) Get(id MDId) (Object, error) {
	if !id.IsValid() {
		return nil, NotFound("invalid mdid %s", id)
	}
	obj, ok := a.cache.Lookup(id)
	if !ok {
		fetched, err := a.provider.GetObject(id)
		if err != nil {
			return nil, err
		}
		obj = a.cache.Insert(fetched)
	}
	a.mu.Lock()
	a.pinned[id]++
	if a.pinned[id] == 1 {
		a.touched = append(a.touched, id)
	}
	a.mu.Unlock()
	return obj, nil
}

// Relation returns the relation with the given id.
func (a *Accessor) Relation(id MDId) (*Relation, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	rel, ok := obj.(*Relation)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not a relation", id, obj)
	}
	return rel, nil
}

// RelationByName resolves and returns a relation by name.
func (a *Accessor) RelationByName(name string) (*Relation, error) {
	id, err := a.provider.LookupRelation(name)
	if err != nil {
		return nil, err
	}
	return a.Relation(id)
}

// Stats returns the statistics object for a relation. Statistics are loaded
// on demand — during the statistics-derivation step, not at bind time —
// matching the paper's lazy histogram loading (§4.1 step 2).
func (a *Accessor) Stats(id MDId) (*RelStats, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	st, ok := obj.(*RelStats)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not relation stats", id, obj)
	}
	return st, nil
}

// Type returns a scalar type object.
func (a *Accessor) Type(id MDId) (*Type, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	t, ok := obj.(*Type)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not a type", id, obj)
	}
	return t, nil
}

// Index returns an index object.
func (a *Accessor) Index(id MDId) (*Index, error) {
	obj, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	ix, ok := obj.(*Index)
	if !ok {
		return nil, fmt.Errorf("md: object %s is %T, not an index", id, obj)
	}
	return ix, nil
}

// Touched returns the ids of all objects accessed in this session, in first-
// touch order. AMPERe serializes exactly these into a dump.
func (a *Accessor) Touched() []MDId {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]MDId, len(a.touched))
	copy(out, a.touched)
	return out
}

// Close unpins everything the session pinned. The accessor must not be used
// afterwards.
func (a *Accessor) Close() {
	a.mu.Lock()
	pinned := a.pinned
	a.pinned = map[MDId]int{}
	a.mu.Unlock()
	for id, n := range pinned {
		for i := 0; i < n; i++ {
			a.cache.Unpin(id)
		}
	}
}

// Provider exposes the session's provider (for name resolution in binders).
func (a *Accessor) Provider() Provider { return a.provider }
