package md

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"orca/internal/gpos"
)

// RetryPolicy bounds retry-with-backoff for transient provider lookups. The
// zero policy disables retry (one attempt per lookup), so hosts that never
// opt in see the historical single-shot behavior. The serving tier
// (internal/serve) and cmd/orca both wire a policy through
// core.Config.MDRetry, so the one-shot CLI and the server share this one
// lifecycle implementation.
//
// Only errors classified transient by IsTransient are retried; terminal
// errors (missing objects, cancelled request contexts, type mismatches)
// surface immediately. Every backoff sleep is budgeted by the session's base
// context: a request deadline that would expire during the backoff stops the
// retry loop with the last transient error instead of sleeping past it, and
// cancelling the context interrupts the sleep.
type RetryPolicy struct {
	// MaxAttempts is the total number of lookup attempts (first try
	// included). Values below 2 disable retry.
	MaxAttempts int
	// InitialBackoff is the pre-jitter backoff before the first retry; it
	// doubles on each subsequent retry. Zero defaults to 5ms when retry is
	// enabled.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero defaults to 500ms.
	MaxBackoff time.Duration
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// attempts returns the effective attempt budget (always at least 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff computes the jittered sleep before retry number `retry` (1-based):
// an exponentially doubled base capped at MaxBackoff, then equal-jittered
// into [base/2, base] so synchronized clients spread out instead of
// retrying in lockstep.
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.InitialBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 500 * time.Millisecond
	}
	for i := 1; i < retry && base < maxB; i++ {
		base *= 2
	}
	if base > maxB {
		base = maxB
	}
	half := base / 2
	if half <= 0 {
		return base
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// TransientError marks a lookup failure as retryable. The retry loop in
// timedLookup unwraps it, so callers that do not retry still see the
// underlying error through errors.Is/As.
type TransientError struct{ Err error }

// Error implements the error interface.
func (e *TransientError) Error() string { return fmt.Sprintf("md: transient: %v", e.Err) }

// Unwrap exposes the underlying failure.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. Backend providers whose failures are
// worth retrying (connection resets, leader elections, catalog-server
// restarts) wrap them with this before returning; nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient classifies a lookup failure as retryable or terminal — the
// classification hook consulted by the retry loop. Retryable are:
//
//   - errors explicitly marked with Transient,
//   - errors implementing `TransientLookup() bool` (a provider-owned
//     classification that avoids importing this package's wrapper),
//   - per-attempt lookup timeouts (CodeLookupTimeout): a slow provider may
//     well answer the next, separately-deadlined attempt.
//
// Everything else is terminal — notably ErrNotFound (the object does not
// exist; retrying cannot create it) and CodeLookupCancelled (the session's
// base context is dead, so further attempts are pointless).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var tl interface{ TransientLookup() bool }
	if errors.As(err, &tl) {
		return tl.TransientLookup()
	}
	if ex := gpos.AsException(err); ex != nil && ex.Comp == gpos.CompMD && ex.Code == CodeLookupTimeout {
		return true
	}
	return false
}

// backoffWait sleeps for d under the session's base context. It returns
// false without sleeping when the context's deadline would expire before the
// backoff completes (the retry budget is exhausted) and false when the
// context is cancelled mid-sleep; true means the retry may proceed.
func backoffWait(base context.Context, d time.Duration) bool {
	if dl, ok := base.Deadline(); ok && time.Until(dl) <= d {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-base.Done():
		return false
	}
}
