package md

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"orca/internal/base"
	"orca/internal/fault"
	"orca/internal/gpos"
)

func testRelForRetry(t *testing.T) (*MemProvider, *Relation) {
	t.Helper()
	p := NewMemProvider()
	Build(p, TableSpec{
		Name: "t", Rows: 100, Policy: DistHash, DistCols: []int{0},
		Cols: []ColSpec{{Name: "a", Type: base.TInt, NDV: 100, Lo: 0, Hi: 100}},
	})
	id, err := p.LookupRelation(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := p.GetObject(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	return p, obj.(*Relation)
}

// flakyProvider fails the first `failures` lookups with a transient error,
// then delegates.
type flakyProvider struct {
	*MemProvider
	failures int32
	left     atomic.Int32
}

func (f *flakyProvider) GetObject(ctx context.Context, id MDId) (Object, error) {
	if f.left.Add(-1) >= 0 {
		return nil, Transient(errors.New("catalog backend restarting"))
	}
	return f.MemProvider.GetObject(ctx, id)
}

func (f *flakyProvider) LookupRelation(ctx context.Context, name string) (MDId, error) {
	if f.left.Add(-1) >= 0 {
		return MDId{}, Transient(errors.New("catalog backend restarting"))
	}
	return f.MemProvider.LookupRelation(ctx, name)
}

func TestRetryAbsorbsTransientFailures(t *testing.T) {
	p, rel := testRelForRetry(t)
	flaky := &flakyProvider{MemProvider: p}
	flaky.left.Store(2)
	acc := NewAccessor(NewCache(nil), flaky)
	acc.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	obj, err := acc.Get(rel.Mdid)
	if err != nil {
		t.Fatalf("retried lookup failed: %v", err)
	}
	if obj.ID() != rel.Mdid {
		t.Fatalf("got object %s, want %s", obj.ID(), rel.Mdid)
	}
	if got := acc.LookupRetries(); got != 2 {
		t.Fatalf("LookupRetries = %d, want 2", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	p, rel := testRelForRetry(t)
	flaky := &flakyProvider{MemProvider: p}
	flaky.left.Store(100)
	acc := NewAccessor(NewCache(nil), flaky)
	acc.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	_, err := acc.Get(rel.Mdid)
	if err == nil {
		t.Fatal("want failure after attempt budget, got nil")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want the last transient error, got %T: %v", err, err)
	}
	if got := acc.LookupRetries(); got != 2 {
		t.Fatalf("LookupRetries = %d, want 2 (3 attempts)", got)
	}
}

func TestRetryTerminalErrorNotRetried(t *testing.T) {
	p, _ := testRelForRetry(t)
	acc := NewAccessor(NewCache(nil), p)
	acc.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, InitialBackoff: time.Millisecond})

	// A missing object is terminal: retrying cannot create it.
	_, err := acc.Get(MDId{OID: 424242, Major: 1})
	var nf *ErrNotFound
	if !errors.As(err, &nf) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if got := acc.LookupRetries(); got != 0 {
		t.Fatalf("LookupRetries = %d for a terminal error, want 0", got)
	}
}

func TestRetryRespectsRequestDeadline(t *testing.T) {
	p, rel := testRelForRetry(t)
	flaky := &flakyProvider{MemProvider: p}
	flaky.left.Store(1000)
	acc := NewAccessor(NewCache(nil), flaky)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	acc.BindContext(ctx)
	// Backoffs of ~1s could retry for minutes; the 30ms deadline must cut
	// the loop after at most one backoff window.
	acc.SetRetryPolicy(RetryPolicy{MaxAttempts: 1000, InitialBackoff: time.Second, MaxBackoff: time.Second})

	start := time.Now()
	_, err := acc.Get(rel.Mdid)
	if err == nil {
		t.Fatal("want failure, got nil")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored the request deadline: ran %v", elapsed)
	}
}

func TestRetryFaultPointInjectsTransient(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{
		Point:  fault.PointServeMDTransient,
		Action: fault.ActError,
		Limit:  2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	p, rel := testRelForRetry(t)
	acc := NewAccessor(NewCache(nil), p)
	acc.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if _, err := acc.Get(rel.Mdid); err != nil {
		t.Fatalf("injected transient faults should be absorbed by retry: %v", err)
	}
	if got := acc.LookupRetries(); got != 2 {
		t.Fatalf("LookupRetries = %d, want 2", got)
	}
}

// TestRetryDisabledByDefault pins the zero-policy behavior: one attempt, the
// raw error surfaces (here an injected fault, which stays a structured
// gpos.Exception through the Transient wrapper).
func TestRetryDisabledByDefault(t *testing.T) {
	disarm, err := fault.Arm([]fault.Spec{{
		Point:  fault.PointServeMDTransient,
		Action: fault.ActError,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	p, rel := testRelForRetry(t)
	acc := NewAccessor(NewCache(nil), p)
	_, gerr := acc.Get(rel.Mdid)
	if gerr == nil {
		t.Fatal("want injected failure with retry disabled")
	}
	if ex := gpos.AsException(gerr); ex == nil || ex.Code != fault.CodeInjected {
		t.Fatalf("want structured injected exception, got %v", gerr)
	}
	if !IsTransient(gerr) {
		t.Fatal("injected serve/md/transient-error should classify as transient")
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"marked", Transient(errors.New("x")), true},
		{"wrapped-marked", gpos.Wrap(Transient(errors.New("x")), gpos.CompMD, "C", "m"), true},
		{"not-found", NotFound("object x"), false},
		{"timeout", gpos.Raise(gpos.CompMD, CodeLookupTimeout, "t"), true},
		{"cancelled", gpos.Raise(gpos.CompMD, CodeLookupCancelled, "c"), false},
		{"plain", errors.New("x"), false},
		{"ctx", context.Canceled, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
