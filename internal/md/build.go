package md

import (
	"math"

	"orca/internal/base"
)

// ColSpec describes one column when building a catalog programmatically.
type ColSpec struct {
	Name string
	Type base.TypeID
	// Statistics: NDV distinct values uniformly spread over [Lo, Hi].
	// NDV 0 means "no statistics for this column".
	NDV      float64
	Lo, Hi   float64
	NullFrac float64
	// Skewed, when > 1, concentrates that multiple of the uniform share on
	// the lowest value (a simple Zipf-ish head).
	Skewed float64
}

// TableSpec describes a relation plus synthetic statistics.
type TableSpec struct {
	Name     string
	Cols     []ColSpec
	Policy   DistPolicy
	DistCols []int
	Rows     float64
	// PartCol/Parts configure range partitioning (PartCol < 0 = none).
	PartCol int
	Parts   []Partition
	// Indexes lists single-column index definitions by column ordinal.
	IndexCols []int
}

// Build registers the relation, its statistics and indexes with the
// provider and returns the relation object. Histograms are equi-depth over
// the declared uniform ranges, with optional head skew.
func Build(p *MemProvider, spec TableSpec) *Relation {
	relID := NewMDId(p.AllocOID())
	statsID := NewMDId(p.AllocOID())

	cols := make([]Column, len(spec.Cols))
	for i, c := range spec.Cols {
		cols[i] = Column{Name: c.Name, Attno: i + 1, Type: c.Type, Nullable: c.NullFrac > 0}
	}
	partCol := spec.PartCol
	if len(spec.Parts) == 0 {
		partCol = -1
	}
	rel := &Relation{
		Mdid:      relID,
		Name:      spec.Name,
		Columns:   cols,
		Policy:    spec.Policy,
		DistCols:  spec.DistCols,
		PartCol:   partCol,
		Parts:     spec.Parts,
		StatsMdid: statsID,
	}

	rs := &RelStats{Mdid: statsID, RelName: spec.Name, Rows: spec.Rows}
	for i, c := range spec.Cols {
		if c.NDV <= 0 {
			continue
		}
		rs.Cols = append(rs.Cols, ColStats{
			ColName:  c.Name,
			Ordinal:  i,
			NDV:      c.NDV,
			NullFrac: c.NullFrac,
			Buckets:  UniformBuckets(spec.Rows*(1-c.NullFrac), c.NDV, c.Lo, c.Hi, c.Skewed),
		})
	}

	for _, ord := range spec.IndexCols {
		ixID := NewMDId(p.AllocOID())
		ix := &Index{
			Mdid:    ixID,
			Name:    spec.Name + "_" + spec.Cols[ord].Name + "_idx",
			RelMdid: relID,
			KeyCols: []int{ord},
		}
		rel.IndexIDs = append(rel.IndexIDs, ixID)
		p.Put(ix)
	}

	p.Put(rel)
	p.Put(rs)
	return rel
}

// UniformBuckets builds an equi-depth histogram of up to 16 buckets for rows
// tuples holding ndv distinct values uniformly spread over [lo, hi]. A skew
// factor > 1 moves extra mass onto the lowest bucket.
func UniformBuckets(rows, ndv, lo, hi float64, skew float64) []Bucket {
	if rows <= 0 || ndv <= 0 {
		return nil
	}
	if hi < lo {
		hi = lo
	}
	n := 16
	if ndv < float64(n) {
		n = int(math.Max(ndv, 1))
	}
	buckets := make([]Bucket, 0, n)
	span := (hi - lo) / float64(n)
	perRows := rows / float64(n)
	perNDV := ndv / float64(n)
	for i := 0; i < n; i++ {
		bLo := lo + span*float64(i)
		bHi := bLo + span
		if i == n-1 {
			bHi = hi
		}
		buckets = append(buckets, Bucket{
			Lo:        base.NewFloat(bLo),
			Hi:        base.NewFloat(bHi),
			Rows:      perRows,
			Distincts: math.Max(perNDV, 1),
		})
	}
	if skew > 1 && n > 1 {
		extra := math.Min(rows*0.5, buckets[0].Rows*(skew-1))
		buckets[0].Rows += extra
		steal := extra / float64(n-1)
		for i := 1; i < n; i++ {
			buckets[i].Rows = math.Max(buckets[i].Rows-steal, 0)
		}
	}
	return buckets
}
