package md

import (
	"context"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/gpos"
)

func TestMDIdParseFormat(t *testing.T) {
	id, err := ParseMDId("0.688.1.1")
	if err != nil {
		t.Fatal(err)
	}
	if id.OID != 688 || id.Major != 1 || id.Minor != 1 {
		t.Errorf("parsed %+v", id)
	}
	if id.String() != "0.688.1.1" {
		t.Errorf("round trip: %s", id)
	}
	short, err := ParseMDId("2.99")
	if err != nil || short.Sys != 2 || short.OID != 99 || short.Major != 1 {
		t.Errorf("short form: %+v err=%v", short, err)
	}
	for _, bad := range []string{"", "1", "a.b.c.d", "1.2.3", "1.2.3.4.5"} {
		if _, err := ParseMDId(bad); err == nil {
			t.Errorf("ParseMDId(%q) accepted", bad)
		}
	}
}

func TestMDIdRoundTripProperty(t *testing.T) {
	f := func(sys int16, oid uint32, major, minor uint16) bool {
		id := MDId{Sys: int32(sys), OID: int64(oid), Major: int32(major), Minor: int32(minor)}
		back, err := ParseMDId(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMDIdVersioning(t *testing.T) {
	id := NewMDId(42)
	b := id.Bumped()
	if !b.SameObject(id) || b == id || b.Major != id.Major+1 {
		t.Errorf("Bumped: %v -> %v", id, b)
	}
}

func testRel(t *testing.T) (*MemProvider, *Relation) {
	t.Helper()
	p := NewMemProvider()
	rel := Build(p, TableSpec{
		Name: "t", Rows: 1000,
		Policy: DistHash, DistCols: []int{0},
		Cols: []ColSpec{
			{Name: "a", Type: base.TInt, NDV: 1000, Lo: 0, Hi: 1000},
			{Name: "b", Type: base.TInt, NDV: 10, Lo: 0, Hi: 10, NullFrac: 0.1},
		},
		IndexCols: []int{0},
	})
	return p, rel
}

func TestBuildRegistersEverything(t *testing.T) {
	p, rel := testRel(t)
	if rel.ColumnOrdinal("b") != 1 || rel.ColumnOrdinal("zzz") != -1 {
		t.Error("ColumnOrdinal broken")
	}
	if _, err := p.GetObject(context.Background(), rel.StatsMdid); err != nil {
		t.Errorf("stats not registered: %v", err)
	}
	if len(rel.IndexIDs) != 1 {
		t.Fatalf("index not registered")
	}
	obj, err := p.GetObject(context.Background(), rel.IndexIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	ix := obj.(*Index)
	if ix.RelMdid != rel.Mdid || len(ix.KeyCols) != 1 || ix.KeyCols[0] != 0 {
		t.Errorf("index shape: %+v", ix)
	}
	sobj, _ := p.GetObject(context.Background(), rel.StatsMdid)
	rs := sobj.(*RelStats)
	if rs.Rows != 1000 || len(rs.Cols) != 2 {
		t.Errorf("stats shape: rows=%g cols=%d", rs.Rows, len(rs.Cols))
	}
	// Histogram mass matches the non-null rows.
	cs := rs.ColStatsFor(1)
	var mass float64
	for _, b := range cs.Buckets {
		mass += b.Rows
	}
	if mass < 890 || mass > 910 {
		t.Errorf("histogram mass %g, want ~900 (10%% nulls)", mass)
	}
}

func TestCacheHitMissAndPinning(t *testing.T) {
	p, rel := testRel(t)
	mem := &gpos.MemoryAccountant{}
	cache := NewCache(mem)
	acc := NewAccessor(cache, p)

	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("first access: hits=%d misses=%d", hits, misses)
	}
	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	hits, _ = cache.Stats()
	if hits != 1 {
		t.Errorf("second access should hit, hits=%d", hits)
	}
	// Pinned entries survive eviction.
	if n := cache.Evict(); n != 0 {
		t.Errorf("evicted %d pinned entries", n)
	}
	acc.Close()
	if n := cache.Evict(); n != 1 {
		t.Errorf("evicted %d after close, want 1", n)
	}
	if mem.Current() != 0 {
		t.Errorf("memory not released: %d", mem.Current())
	}
}

func TestCacheVersionInvalidation(t *testing.T) {
	p, rel := testRel(t)
	cache := NewCache(nil)
	acc := NewAccessor(cache, p)
	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	acc.Close()

	// DDL: bump the version in the backend.
	newID, err := p.BumpRelationVersion("t")
	if err != nil {
		t.Fatal(err)
	}
	if newID == rel.Mdid {
		t.Fatal("version not bumped")
	}

	// A new session resolves the new version; the old entry is evicted when
	// the new version is inserted.
	acc2 := NewAccessor(cache, p)
	got, err := acc2.RelationByName("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Mdid != newID {
		t.Errorf("resolved %s, want %s", got.Mdid, newID)
	}
	// The stale version can no longer be fetched from the provider.
	if _, err := p.GetObject(context.Background(), rel.Mdid); err == nil {
		t.Error("stale version still served by provider")
	}
	acc2.Close()
}

func TestAccessorTouchedIsMinimal(t *testing.T) {
	p, rel := testRel(t)
	Build(p, TableSpec{
		Name: "other", Rows: 5, Policy: DistHash, DistCols: []int{0},
		Cols: []ColSpec{{Name: "x", Type: base.TInt, NDV: 5, Lo: 0, Hi: 5}},
	})
	acc := NewAccessor(NewCache(nil), p)
	if _, err := acc.Relation(rel.Mdid); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Stats(rel.StatsMdid); err != nil {
		t.Fatal(err)
	}
	touched := acc.Touched()
	if len(touched) != 2 {
		t.Errorf("touched %v, want exactly the 2 accessed objects", touched)
	}
}

func TestAccessorTypeMismatch(t *testing.T) {
	p, rel := testRel(t)
	acc := NewAccessor(NewCache(nil), p)
	if _, err := acc.Stats(rel.Mdid); err == nil {
		t.Error("relation accepted as stats")
	}
	if _, err := acc.Relation(rel.StatsMdid); err == nil {
		t.Error("stats accepted as relation")
	}
	if _, err := acc.Get(MDId{}); err == nil {
		t.Error("invalid mdid accepted")
	}
}

func TestColumnFactory(t *testing.T) {
	f := NewColumnFactory()
	a := f.NewTableColumn("a", base.TInt, NewMDId(1), 0)
	b := f.NewComputedColumn("b", base.TFloat)
	if a.ID == b.ID {
		t.Error("ids collide")
	}
	if f.Lookup(a.ID) != a || f.Lookup(b.ID) != b {
		t.Error("lookup broken")
	}
	if f.Name(a.ID) != "a" || f.Name(999) != "col999" {
		t.Error("Name fallback broken")
	}
	// Register with explicit id advances the allocator.
	f.Register(&ColRef{ID: 100, Name: "ext"})
	c := f.NewComputedColumn("c", base.TInt)
	if c.ID <= 100 {
		t.Errorf("allocator did not advance past registered id: %d", c.ID)
	}
	if f.Count() != 4 {
		t.Errorf("Count = %d, want 4", f.Count())
	}
}

func TestPartitionContains(t *testing.T) {
	p := Partition{Lo: base.NewInt(10), Hi: base.NewInt(20)}
	if !p.Contains(base.NewInt(10)) || !p.Contains(base.NewInt(19)) {
		t.Error("inclusive lower bound broken")
	}
	if p.Contains(base.NewInt(20)) || p.Contains(base.NewInt(9)) {
		t.Error("exclusive upper bound broken")
	}
}

func TestUniformBucketsSkew(t *testing.T) {
	flat := UniformBuckets(1000, 100, 0, 100, 0)
	skewed := UniformBuckets(1000, 100, 0, 100, 5)
	if len(flat) == 0 || len(skewed) == 0 {
		t.Fatal("no buckets")
	}
	var flatMass, skewMass float64
	for i := range flat {
		flatMass += flat[i].Rows
		skewMass += skewed[i].Rows
	}
	if flatMass < 999 || flatMass > 1001 || skewMass < 999 || skewMass > 1001 {
		t.Errorf("mass not preserved: flat=%g skewed=%g", flatMass, skewMass)
	}
	if skewed[0].Rows <= flat[0].Rows {
		t.Error("skew factor did not concentrate the head bucket")
	}
}
