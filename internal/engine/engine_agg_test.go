package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

func aggElem(fx *fixture, name string, arg ops.ScalarExpr) ops.AggElem {
	return ops.AggElem{
		Col: fx.f.NewComputedColumn(name, base.TInt),
		Agg: &ops.AggFunc{Name: name, Arg: arg},
	}
}

func TestHashAggGrouped(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	v := ops.NewIdent(cols[2].ID, base.TInt)
	agg := &ops.HashAgg{Mode: ops.AggSingle,
		GroupCols: []base.ColID{cols[1].ID},
		Aggs: []ops.AggElem{
			aggElem(fx, "count", v),
			aggElem(fx, "sum", v),
			aggElem(fx, "min", v),
			aggElem(fx, "max", v),
		}}
	// Group correctness needs co-location on the grouping column.
	red := ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{cols[1].ID}}, scan)
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, ops.NewExpr(agg, red)))
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		g := r[0].I
		switch g {
		case 0: // v: 10,30,50,70
			if r[1].I != 4 || r[2].I != 160 || r[3].I != 10 || r[4].I != 70 {
				t.Errorf("group 0 aggs = %v", r)
			}
		case 1: // v: 20,40,60,NULL → count ignores NULL
			if r[1].I != 3 || r[2].I != 120 || r[3].I != 20 || r[4].I != 60 {
				t.Errorf("group 1 aggs = %v", r)
			}
		default:
			t.Errorf("unexpected group %d", g)
		}
	}
}

func TestTwoStageAggMatchesSingleStage(t *testing.T) {
	fx := newFixture(t)
	// Single stage on gathered input.
	scan1, cols1 := fx.scan("t", nil)
	single := &ops.HashAgg{Mode: ops.AggSingle,
		GroupCols: []base.ColID{cols1[1].ID},
		Aggs:      []ops.AggElem{aggElem(fx, "count", ops.NewIdent(cols1[2].ID, base.TInt))}}
	resSingle := run(t, fx, ops.NewExpr(single, ops.NewExpr(&ops.Gather{}, scan1)))

	// Two stages: local partials, redistribute, global combine (count→sum).
	scan2, cols2 := fx.scan("t", nil)
	partial := fx.f.NewComputedColumn("partial", base.TInt)
	local := &ops.HashAgg{Mode: ops.AggLocal,
		GroupCols: []base.ColID{cols2[1].ID},
		Aggs: []ops.AggElem{{Col: partial,
			Agg: &ops.AggFunc{Name: "count", Arg: ops.NewIdent(cols2[2].ID, base.TInt)}}}}
	outCol := fx.f.NewComputedColumn("count", base.TInt)
	global := &ops.HashAgg{Mode: ops.AggGlobal,
		GroupCols: []base.ColID{cols2[1].ID},
		Aggs: []ops.AggElem{{Col: outCol,
			Agg: &ops.AggFunc{Name: "sum", Arg: ops.NewIdent(partial.ID, base.TInt)}}}}
	plan := ops.NewExpr(&ops.Gather{},
		ops.NewExpr(global,
			ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{cols2[1].ID}},
				ops.NewExpr(local, scan2))))
	resTwo := run(t, fx, plan)

	a, b := rowsAsStrings(resSingle), rowsAsStrings(resTwo)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestScalarAggEmptyInput(t *testing.T) {
	fx := newFixture(t)
	rel := fx.rels["t"]
	cols := []*md.ColRef{
		fx.f.NewTableColumn("k", base.TInt, rel.Mdid, 0),
		fx.f.NewTableColumn("g", base.TInt, rel.Mdid, 1),
		fx.f.NewTableColumn("v", base.TInt, rel.Mdid, 2),
	}
	// Filter that matches nothing.
	scan := ops.NewExpr(&ops.Scan{Rel: rel, Cols: cols, Filter: ops.NewCmp(ops.CmpGt,
		ops.NewIdent(cols[0].ID, base.TInt), ops.NewConst(base.NewInt(1000)))})
	star := ops.AggElem{Col: fx.f.NewComputedColumn("count", base.TInt), Agg: &ops.AggFunc{Name: "count"}}
	sum := aggElem(fx, "sum", ops.NewIdent(cols[2].ID, base.TInt))
	agg := &ops.ScalarAgg{Mode: ops.AggSingle, Aggs: []ops.AggElem{star, sum}}
	res := run(t, fx, ops.NewExpr(agg, ops.NewExpr(&ops.Gather{}, scan)))
	if len(res.Rows) != 1 {
		t.Fatalf("scalar agg over empty input returned %d rows, want 1", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("count(*) over empty = %s, want 0", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("sum over empty = %s, want NULL", res.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	distinct := ops.AggElem{
		Col: fx.f.NewComputedColumn("dc", base.TInt),
		Agg: &ops.AggFunc{Name: "count", Arg: ops.NewIdent(cols[1].ID, base.TInt), Distinct: true},
	}
	agg := &ops.ScalarAgg{Mode: ops.AggSingle, Aggs: []ops.AggElem{distinct}}
	res := run(t, fx, ops.NewExpr(agg, ops.NewExpr(&ops.Gather{}, scan)))
	if res.Rows[0][0].I != 2 {
		t.Errorf("count(distinct g) = %s, want 2", res.Rows[0][0])
	}
}

func TestSortLimitOffset(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	order := props.OrderSpec{Items: []props.OrderItem{{Col: cols[2].ID, Desc: true}}}
	lim := &ops.PhysicalLimit{Order: order, Count: 3, Offset: 1, HasCount: true}
	res := run(t, fx, ops.NewExpr(lim, ops.NewExpr(&ops.Gather{}, scan)))
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %d, want 3", len(res.Rows))
	}
	// v desc: 70,60,50,... offset 1 → 60,50,40.
	want := []int64{60, 50, 40}
	for i, r := range res.Rows {
		if r[2].I != want[i] {
			t.Errorf("row %d v = %s, want %d", i, r[2], want[i])
		}
	}
}

func TestSortNullsFirst(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	order := props.MakeOrder(cols[2].ID)
	sorted := ops.NewExpr(&ops.Sort{Order: order}, ops.NewExpr(&ops.Gather{}, scan))
	res := run(t, fx, sorted)
	if !res.Rows[0][2].IsNull() {
		t.Errorf("NULL must sort first, got %s", res.Rows[0][2])
	}
}

func TestGatherMergePreservesOrder(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	order := props.MakeOrder(cols[0].ID)
	plan := ops.NewExpr(&ops.GatherMerge{Order: order}, ops.NewExpr(&ops.Sort{Order: order}, scan))
	res := run(t, fx, plan)
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Compare(res.Rows[i][0]) > 0 {
			t.Fatalf("gather-merge output out of order at %d", i)
		}
	}
}

func TestUnionAll(t *testing.T) {
	fx := newFixture(t)
	s1, c1 := fx.scan("t", nil)
	s2, c2 := fx.scan("t", nil)
	out := fx.f.NewComputedColumn("u", base.TInt)
	u := &ops.PhysicalUnionAll{
		InCols:  [][]base.ColID{{c1[0].ID}, {c2[0].ID}},
		OutCols: []*md.ColRef{out},
	}
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, ops.NewExpr(u, s1, s2)))
	if len(res.Rows) != 16 {
		t.Errorf("union rows = %d, want 16", len(res.Rows))
	}
}

func TestWindowFunctions(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	rk := fx.f.NewComputedColumn("rank", base.TInt)
	rn := fx.f.NewComputedColumn("row_number", base.TInt)
	sm := fx.f.NewComputedColumn("sum", base.TInt)
	w := &ops.PhysicalWindow{
		PartitionCols: []base.ColID{cols[1].ID},
		Order:         props.OrderSpec{Items: []props.OrderItem{{Col: cols[2].ID, Desc: true}}},
		Wins: []ops.WinElem{
			{Col: rk, Fn: &ops.WinFunc{Name: "rank"}},
			{Col: rn, Fn: &ops.WinFunc{Name: "row_number"}},
			{Col: sm, Fn: &ops.WinFunc{Name: "sum", Arg: ops.NewIdent(cols[2].ID, base.TInt)}},
		},
	}
	plan := ops.NewExpr(&ops.Gather{}, ops.NewExpr(w, ops.NewExpr(&ops.Gather{}, scan)))
	res := run(t, fx, plan)
	if len(res.Rows) != 8 {
		t.Fatalf("window rows = %d", len(res.Rows))
	}
	// Partition sums: g=0 → 160, g=1 → 120 on every row of the partition.
	for _, r := range res.Rows {
		wantSum := int64(160)
		if r[1].I == 1 {
			wantSum = 120
		}
		if r[5].I != wantSum {
			t.Errorf("window sum for g=%d is %s, want %d", r[1].I, r[5], wantSum)
		}
		if r[3].I < 1 || r[3].I > 4 || r[4].I < 1 || r[4].I > 4 {
			t.Errorf("rank/row_number out of range: %v", r)
		}
	}
}

func TestCTEProducerConsumerSharing(t *testing.T) {
	fx := newFixture(t)
	scan, cols := fx.scan("t", nil)
	prod := &ops.PhysicalCTEProducer{ID: 1, Cols: []base.ColID{cols[0].ID, cols[2].ID}}
	c1 := fx.f.NewComputedColumn("k1", base.TInt)
	c2 := fx.f.NewComputedColumn("k2", base.TInt)
	cons1 := &ops.PhysicalCTEConsumer{ID: 1, Cols: []*md.ColRef{c1}, ProducerCols: []base.ColID{cols[0].ID}}
	cons2 := &ops.PhysicalCTEConsumer{ID: 1, Cols: []*md.ColRef{c2}, ProducerCols: []base.ColID{cols[0].ID}}
	join := &ops.HashJoin{Type: ops.InnerJoin,
		LeftKeys: []base.ColID{c1.ID}, RightKeys: []base.ColID{c2.ID}}
	body := ops.NewExpr(&ops.Gather{}, ops.NewExpr(join,
		ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{c1.ID}}, ops.NewExpr(cons1)),
		ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{c2.ID}}, ops.NewExpr(cons2))))
	seq := ops.NewExpr(&ops.Sequence{}, ops.NewExpr(prod, scan), body)
	res := run(t, fx, seq)
	if len(res.Rows) != 8 {
		t.Errorf("CTE self join rows = %d, want 8", len(res.Rows))
	}
}

func TestBudgetTimeout(t *testing.T) {
	fx := newFixture(t)
	scan, _ := fx.scan("t", nil)
	res, err := fx.c.Execute(ops.NewExpr(&ops.Gather{}, scan), Options{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("tiny budget did not time out")
	}
}

func TestMemLimitOOM(t *testing.T) {
	fx := newFixture(t)
	s1, c1 := fx.scan("t", nil)
	s2, c2 := fx.scan("t", nil)
	j := &ops.HashJoin{Type: ops.InnerJoin,
		LeftKeys: []base.ColID{c1[0].ID}, RightKeys: []base.ColID{c2[0].ID}}
	plan := ops.NewExpr(&ops.Gather{}, ops.NewExpr(j,
		ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{c1[0].ID}}, s1),
		ops.NewExpr(&ops.Broadcast{}, s2)))
	// The broadcast build side holds all 8 rows per segment: cap below it.
	if _, err := fx.c.Execute(plan, Options{MemLimitRows: 4}); err != ErrOOM {
		t.Errorf("want ErrOOM, got %v", err)
	}
	if _, err := fx.c.Execute(plan, Options{MemLimitRows: 100}); err != nil {
		t.Errorf("generous limit failed: %v", err)
	}
}

func TestSubPlanFilterExists(t *testing.T) {
	fx := newFixture(t)
	outer, oCols := fx.scan("t", nil)
	// Correlated inner: dim.id = t.g (t.g bound per outer row).
	rel := fx.rels["dim"]
	dCols := []*md.ColRef{
		fx.f.NewTableColumn("id", base.TInt, rel.Mdid, 0),
		fx.f.NewTableColumn("name", base.TString, rel.Mdid, 1),
	}
	inner := ops.NewExpr(&ops.Scan{Rel: rel, Cols: dCols,
		Filter: ops.Eq(ops.NewIdent(dCols[0].ID, base.TInt), ops.NewIdent(oCols[1].ID, base.TInt))})
	sub := &ops.SubPlanFilter{Kind: ops.SubExists, Plan: inner, SubCol: dCols[0].ID}
	res := run(t, fx, ops.NewExpr(sub, ops.NewExpr(&ops.Gather{}, outer)))
	if len(res.Rows) != 8 {
		t.Errorf("EXISTS rows = %d, want 8 (g always in dim)", len(res.Rows))
	}
	sub2 := &ops.SubPlanFilter{Kind: ops.SubNotExists, Plan: inner, SubCol: dCols[0].ID}
	res2 := run(t, fx, ops.NewExpr(sub2, ops.NewExpr(&ops.Gather{}, outer)))
	if len(res2.Rows) != 0 {
		t.Errorf("NOT EXISTS rows = %d, want 0", len(res2.Rows))
	}
}

func TestLikeMatcherAgainstReference(t *testing.T) {
	// Property: the fast-path LIKE matcher agrees with the recursive
	// reference for random strings and patterns over a tiny alphabet.
	ref := func(s, p string) bool { return likeRec(s, p) }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []byte("ab%_")
		gen := func(n int) string {
			b := make([]byte, r.Intn(n))
			for i := range b {
				b[i] = alphabet[r.Intn(len(alphabet))]
			}
			return string(b)
		}
		sAlpha := []byte("ab")
		sGen := func(n int) string {
			b := make([]byte, r.Intn(n))
			for i := range b {
				b[i] = sAlpha[r.Intn(2)]
			}
			return string(b)
		}
		s, p := sGen(8), gen(6)
		return likeMatch(s, p) == ref(s, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
