package engine

import (
	"fmt"
	"sort"

	"orca/internal/base"
	"orca/internal/ops"
)

// aggState accumulates one aggregate function.
type aggState struct {
	fn      *ops.AggFunc
	count   int64
	sum     base.Datum
	minmax  base.Datum
	seen    map[string]bool // DISTINCT tracking
	anyRows bool
}

func newAggState(fn *ops.AggFunc) *aggState {
	s := &aggState{fn: fn, sum: base.Null, minmax: base.Null}
	if fn.Distinct {
		s.seen = make(map[string]bool)
	}
	return s
}

func (s *aggState) add(v base.Datum, isStar bool) {
	s.anyRows = true
	if isStar {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	if s.seen != nil {
		k := v.String()
		if s.seen[k] {
			return
		}
		s.seen[k] = true
	}
	s.count++
	switch s.fn.Name {
	case "sum":
		s.sum = addDatum(s.sum, v)
	case "min":
		if s.minmax.IsNull() || v.Compare(s.minmax) < 0 {
			s.minmax = v
		}
	case "max":
		if s.minmax.IsNull() || v.Compare(s.minmax) > 0 {
			s.minmax = v
		}
	}
}

func addDatum(acc, v base.Datum) base.Datum {
	if acc.IsNull() {
		return v
	}
	if acc.Kind == base.DInt && v.Kind == base.DInt {
		return base.NewInt(acc.I + v.I)
	}
	return base.NewFloat(acc.AsFloat() + v.AsFloat())
}

func (s *aggState) value() base.Datum {
	switch s.fn.Name {
	case "count":
		return base.NewInt(s.count)
	case "sum":
		return s.sum
	case "min", "max":
		return s.minmax
	default:
		return base.Null
	}
}

// execHashAgg and execStreamAgg share execGroupAgg (the stream variant's
// ordering requirement only affects planning and cost).
func (ex *executor) execHashAgg(op *ops.HashAgg, e *ops.Expr) (*result, error) {
	return ex.execGroupAgg(op.GroupCols, op.Aggs, e.Children[0])
}

func (ex *executor) execStreamAgg(op *ops.StreamAgg, e *ops.Expr) (*result, error) {
	return ex.execGroupAgg(op.GroupCols, op.Aggs, e.Children[0])
}

func (ex *executor) execGroupAgg(groupCols []base.ColID, aggs []ops.AggElem, child *ops.Expr) (*result, error) {
	in, err := ex.exec(child)
	if err != nil {
		return nil, err
	}
	sch := in.sch()
	gPos, err := colPositions(sch, groupCols)
	if err != nil {
		return nil, err
	}
	outSchema := append([]base.ColID(nil), groupCols...)
	for _, a := range aggs {
		outSchema = append(outSchema, a.Col.ID)
	}
	out := &result{schema: outSchema, parts: make([][]Row, len(in.parts)), rep: in.rep}
	ectx := &evalCtx{sch: sch, bindings: ex.bindings}

	for s, rows := range in.oneCopy() {
		if err := ex.charge(len(rows)); err != nil {
			return nil, err
		}
		type group struct {
			key    Row
			states []*aggState
		}
		groups := make(map[string]*group)
		var order []string
		for _, r := range rows {
			k := keyString(r, gPos)
			g, ok := groups[k]
			if !ok {
				key := make(Row, len(gPos))
				for i, p := range gPos {
					key[i] = r[p]
				}
				g = &group{key: key, states: make([]*aggState, len(aggs))}
				for i, a := range aggs {
					g.states[i] = newAggState(a.Agg)
				}
				groups[k] = g
				order = append(order, k)
			}
			for i, a := range aggs {
				if a.Agg.Arg == nil {
					g.states[i].add(base.Null, true)
					continue
				}
				v, err := ectx.eval(a.Agg.Arg, r)
				if err != nil {
					return nil, err
				}
				g.states[i].add(v, false)
			}
		}
		if ex.opts.MemLimitRows > 0 && len(groups) > ex.opts.MemLimitRows {
			return nil, ErrOOM
		}
		for _, k := range order {
			g := groups[k]
			row := append(Row{}, g.key...)
			for _, st := range g.states {
				row = append(row, st.value())
			}
			out.parts[s] = append(out.parts[s], row)
		}
	}
	fillReplicated(out)
	return out, nil
}

// execScalarAgg aggregates without grouping, producing exactly one row per
// logical copy (Local mode produces one row per segment, feeding a Global
// combine above a motion).
func (ex *executor) execScalarAgg(op *ops.ScalarAgg, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	outSchema := make([]base.ColID, len(op.Aggs))
	for i, a := range op.Aggs {
		outSchema[i] = a.Col.ID
	}
	out := &result{schema: outSchema, parts: make([][]Row, len(in.parts))}
	ectx := &evalCtx{sch: in.sch(), bindings: ex.bindings}

	emit := func(s int, rows []Row) error {
		if err := ex.charge(len(rows)); err != nil {
			return err
		}
		states := make([]*aggState, len(op.Aggs))
		for i, a := range op.Aggs {
			states[i] = newAggState(a.Agg)
		}
		for _, r := range rows {
			for i, a := range op.Aggs {
				if a.Agg.Arg == nil {
					states[i].add(base.Null, true)
					continue
				}
				v, err := ectx.eval(a.Agg.Arg, r)
				if err != nil {
					return err
				}
				states[i].add(v, false)
			}
		}
		row := make(Row, len(states))
		for i, st := range states {
			row[i] = st.value()
		}
		out.parts[s] = append(out.parts[s], row)
		return nil
	}

	if op.Mode == ops.AggLocal {
		// One partial row per segment, where segment data exists.
		for s, rows := range in.oneCopy() {
			if len(rows) == 0 {
				continue
			}
			if err := emit(s, rows); err != nil {
				return nil, err
			}
		}
		// Guarantee at least one partial so the global stage still emits a
		// row for empty inputs (count() = 0).
		empty := true
		for _, p := range out.parts {
			if len(p) > 0 {
				empty = false
				break
			}
		}
		if empty {
			if err := emit(0, nil); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Single / Global: one row over the whole (gathered) input.
	var all []Row
	for _, rows := range in.oneCopy() {
		all = append(all, rows...)
	}
	if err := emit(0, all); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Window functions

func (ex *executor) execPhysicalWindow(op *ops.PhysicalWindow, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	sch := in.sch()
	pPos, err := colPositions(sch, op.PartitionCols)
	if err != nil {
		return nil, err
	}
	outSchema := append([]base.ColID(nil), in.schema...)
	for _, w := range op.Wins {
		outSchema = append(outSchema, w.Col.ID)
	}
	out := &result{schema: outSchema, parts: make([][]Row, len(in.parts)), rep: in.rep}
	ectx := &evalCtx{sch: sch, bindings: ex.bindings}

	for s, rows := range in.oneCopy() {
		if err := ex.charge(len(rows) * maxi(len(op.Wins), 1)); err != nil {
			return nil, err
		}
		// Partition.
		parts := make(map[string][]Row)
		var order []string
		for _, r := range rows {
			k := keyString(r, pPos)
			if _, ok := parts[k]; !ok {
				order = append(order, k)
			}
			parts[k] = append(parts[k], r)
		}
		for _, k := range order {
			prows := append([]Row(nil), parts[k]...)
			if !op.Order.IsAny() {
				sortRows(prows, sch, op.Order)
			}
			// Whole-partition frame aggregates.
			frameVals := make([]base.Datum, len(op.Wins))
			for wi, w := range op.Wins {
				switch w.Fn.Name {
				case "sum", "min", "max", "count":
					st := newAggState(&ops.AggFunc{Name: w.Fn.Name, Arg: w.Fn.Arg})
					for _, r := range prows {
						if w.Fn.Arg == nil {
							st.add(base.Null, true)
							continue
						}
						v, err := ectx.eval(w.Fn.Arg, r)
						if err != nil {
							return nil, err
						}
						st.add(v, false)
					}
					frameVals[wi] = st.value()
				}
			}
			var prevKeyRow Row
			rank := 0
			for ri, r := range prows {
				nr := append([]base.Datum{}, r...)
				for wi, w := range op.Wins {
					switch w.Fn.Name {
					case "row_number":
						nr = append(nr, base.NewInt(int64(ri+1)))
					case "rank":
						if prevKeyRow == nil || orderValsDiffer(ectx, op, prevKeyRow, r) {
							rank = ri + 1
						}
						nr = append(nr, base.NewInt(int64(rank)))
					case "sum", "min", "max", "count":
						nr = append(nr, frameVals[wi])
					default:
						return nil, fmt.Errorf("engine: unknown window function %q", w.Fn.Name)
					}
				}
				prevKeyRow = r
				out.parts[s] = append(out.parts[s], nr)
			}
		}
	}
	fillReplicated(out)
	return out, nil
}

func orderValsDiffer(ectx *evalCtx, op *ops.PhysicalWindow, a, b Row) bool {
	for _, it := range op.Order.Items {
		p := ectx.sch[it.Col]
		if a[p].Compare(b[p]) != 0 {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// CTEs

func (ex *executor) execPhysicalCTEProducer(op *ops.PhysicalCTEProducer, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	if err := ex.charge(in.totalRows()); err != nil { // materialization
		return nil, err
	}
	ex.cte[op.ID] = in
	return in, nil
}

func (ex *executor) execPhysicalCTEConsumer(op *ops.PhysicalCTEConsumer, _ *ops.Expr) (*result, error) {
	prod, ok := ex.cte[op.ID]
	if !ok {
		return nil, fmt.Errorf("engine: CTE %d consumed before production", op.ID)
	}
	pos, err := colPositions(schemaOf(prod.schema), op.ProducerCols)
	if err != nil {
		return nil, err
	}
	sch := make([]base.ColID, len(op.Cols))
	for i, c := range op.Cols {
		sch[i] = c.ID
	}
	out := &result{schema: sch, parts: make([][]Row, len(prod.parts))}
	for s, rows := range prod.oneCopy() {
		if err := ex.charge(len(rows)); err != nil {
			return nil, err
		}
		for _, r := range rows {
			nr := make(Row, len(pos))
			for i, p := range pos {
				nr[i] = r[p]
			}
			out.parts[s] = append(out.parts[s], nr)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// SubPlans (legacy Planner execution of non-decorrelated subqueries)

// runSubPlan executes the subplan once under the given outer-row bindings
// and returns all produced values of the requested column.
func (ex *executor) runSubPlan(plan *ops.Expr, col base.ColID, bindings map[base.ColID]base.Datum) ([]base.Datum, error) {
	saved := ex.bindings
	merged := make(map[base.ColID]base.Datum, len(saved)+len(bindings))
	for k, v := range saved {
		merged[k] = v
	}
	for k, v := range bindings {
		merged[k] = v
	}
	ex.bindings = merged
	defer func() { ex.bindings = saved }()

	res, err := ex.exec(plan)
	if err != nil {
		return nil, err
	}
	pos, ok := res.sch()[col]
	if !ok {
		// EXISTS-style subplans only need row existence: return a NULL per
		// produced row.
		var out []base.Datum
		for _, rows := range res.oneCopy() {
			for range rows {
				out = append(out, base.Null)
			}
		}
		return out, nil
	}
	var out []base.Datum
	for _, rows := range res.oneCopy() {
		for _, r := range rows {
			out = append(out, r[pos])
		}
	}
	return out, nil
}

// bindingsFor snapshots the outer row's columns as correlation parameters.
func bindingsFor(sch []base.ColID, r Row) map[base.ColID]base.Datum {
	out := make(map[base.ColID]base.Datum, len(sch))
	for i, c := range sch {
		out[c] = r[i]
	}
	return out
}

func (ex *executor) execSubPlanFilter(op *ops.SubPlanFilter, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts))}
	ectx := &evalCtx{sch: in.sch(), bindings: ex.bindings}
	for s, rows := range in.oneCopy() {
		for _, r := range rows {
			if err := ex.charge(1); err != nil {
				return nil, err
			}
			vals, err := ex.runSubPlan(op.Plan, op.SubCol, bindingsFor(in.schema, r))
			if err != nil {
				return nil, err
			}
			keep := false
			switch op.Kind {
			case ops.SubExists:
				keep = len(vals) > 0
			case ops.SubNotExists:
				keep = len(vals) == 0
			case ops.SubIn, ops.SubNotIn:
				test, err := ectx.eval(op.Test, r)
				if err != nil {
					return nil, err
				}
				found := false
				for _, v := range vals {
					if !v.IsNull() && !test.IsNull() && v.Compare(test) == 0 {
						found = true
						break
					}
				}
				keep = found == (op.Kind == ops.SubIn)
			case ops.SubScalar:
				v := base.Null
				if len(vals) > 0 {
					v = vals[0]
				}
				sub := &evalCtx{sch: ectx.sch, bindings: map[base.ColID]base.Datum{op.SubCol: v}}
				for k, b := range ex.bindings {
					sub.bindings[k] = b
				}
				keep, err = sub.truthy(op.Test, r)
				if err != nil {
					return nil, err
				}
			}
			if keep {
				out.parts[s] = append(out.parts[s], r)
			}
		}
	}
	return out, nil
}

func (ex *executor) execSubPlanProject(op *ops.SubPlanProject, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	sch := append(append([]base.ColID(nil), in.schema...), op.OutCol)
	out := &result{schema: sch, parts: make([][]Row, len(in.parts))}
	for s, rows := range in.oneCopy() {
		for _, r := range rows {
			if err := ex.charge(1); err != nil {
				return nil, err
			}
			vals, err := ex.runSubPlan(op.Plan, op.SubCol, bindingsFor(in.schema, r))
			if err != nil {
				return nil, err
			}
			v := base.Null
			if len(vals) > 0 {
				v = vals[0]
			}
			out.parts[s] = append(out.parts[s], append(append(Row{}, r...), v))
		}
	}
	return out, nil
}

// SortResult orders gathered result rows for deterministic comparison in
// tests and tools.
func SortResult(res *Result) {
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for k := range a {
			c := a[k].Compare(b[k])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
