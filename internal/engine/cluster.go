// Package engine is the host-database substrate: a simulated shared-nothing
// MPP cluster in the mold of paper §2.1 — a master plus N segments, each
// owning a slice of every hash-distributed table, joined by an interconnect
// that the motion operators (Gather, GatherMerge, Redistribute, Broadcast)
// exercise. It executes the physical plans produced by Orca, by the legacy
// Planner baseline and by the rival Hadoop-engine simulators, and reports
// deterministic work counters (tuple operations, network tuples) that stand
// in for wall-clock time at cluster scale.
package engine

import (
	"errors"
	"fmt"
	"sort"

	"orca/internal/base"
	"orca/internal/md"
)

// Row is one tuple.
type Row []base.Datum

// ErrBudget reports that execution exceeded the configured tuple-operation
// budget — the reproduction of the paper's 10000-second query timeout
// (§7.2.2): plans that blow the budget score as timed out.
var ErrBudget = errors.New("engine: execution budget exhausted (timeout)")

// ErrOOM reports that an operator's in-memory state exceeded the per-segment
// memory limit without spill support (the failure mode of §7.3.2: "inability
// of these systems to spill partial results to disk").
var ErrOOM = errors.New("engine: out of memory")

// Table is a stored relation: data per partition per segment.
type Table struct {
	Rel *md.Relation
	// parts[p][s] holds partition p's rows on segment s; unpartitioned
	// tables have a single partition. Replicated tables store the full copy
	// at every segment; singleton tables store everything on segment 0.
	parts [][][]Row
}

// Rows returns the total row count.
func (t *Table) Rows() int {
	n := 0
	for _, p := range t.parts {
		for _, seg := range p {
			n += len(seg)
		}
	}
	if t.Rel.Policy == md.DistReplicated {
		segs := len(t.parts[0])
		if segs > 0 {
			n /= segs
		}
	}
	return n
}

// AllRows returns one logical copy of every stored row (replicated tables
// contribute a single copy), for reference computations in tests and tools.
func (t *Table) AllRows() []Row {
	var out []Row
	for _, p := range t.parts {
		for s, seg := range p {
			out = append(out, seg...)
			if t.Rel.Policy == md.DistReplicated && s == 0 {
				break
			}
		}
	}
	return out
}

// Cluster is the simulated MPP system.
type Cluster struct {
	Segments int
	tables   map[string]*Table
	Provider *md.MemProvider
}

// NewCluster builds a cluster with the given segment count over a metadata
// provider (the catalog).
func NewCluster(segments int, provider *md.MemProvider) *Cluster {
	if segments < 1 {
		segments = 1
	}
	return &Cluster{Segments: segments, tables: make(map[string]*Table), Provider: provider}
}

// CreateTable loads rows into the cluster under the relation's distribution
// policy and partitioning scheme.
func (c *Cluster) CreateTable(rel *md.Relation, rows []Row) error {
	nParts := 1
	if rel.IsPartitioned() {
		nParts = len(rel.Parts)
	}
	t := &Table{Rel: rel, parts: make([][][]Row, nParts)}
	for p := range t.parts {
		t.parts[p] = make([][]Row, c.Segments)
	}
	for _, r := range rows {
		if len(r) != len(rel.Columns) {
			return fmt.Errorf("engine: row width %d != %d columns of %s", len(r), len(rel.Columns), rel.Name)
		}
		p := 0
		if rel.IsPartitioned() {
			p = c.partitionOf(rel, r)
			if p < 0 {
				return fmt.Errorf("engine: row outside partition ranges of %s", rel.Name)
			}
		}
		switch rel.Policy {
		case md.DistReplicated:
			for s := 0; s < c.Segments; s++ {
				t.parts[p][s] = append(t.parts[p][s], r)
			}
		case md.DistSingleton:
			t.parts[p][0] = append(t.parts[p][0], r)
		case md.DistHash:
			s := c.segmentFor(rel, r)
			t.parts[p][s] = append(t.parts[p][s], r)
		default: // DistRandom: deterministic round-robin on row content
			s := int(hashRow(r) % uint64(c.Segments))
			t.parts[p][s] = append(t.parts[p][s], r)
		}
	}
	c.tables[rel.Name] = t
	return nil
}

// Table returns a stored table by name.
func (c *Cluster) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// TableNames lists the stored tables.
func (c *Cluster) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Cluster) partitionOf(rel *md.Relation, r Row) int {
	v := r[rel.PartCol]
	for i, p := range rel.Parts {
		if p.Contains(v) {
			return i
		}
	}
	return -1
}

func (c *Cluster) segmentFor(rel *md.Relation, r Row) int {
	h := uint64(14695981039346656037)
	for _, ord := range rel.DistCols {
		h = h*31 + r[ord].Hash()
	}
	return int(h % uint64(c.Segments))
}

func hashRow(r Row) uint64 {
	h := uint64(1469598103934665603)
	for _, d := range r {
		h = h*31 + d.Hash()
	}
	return h
}

// hashCols hashes selected columns of a row for redistribution.
func hashCols(r Row, idx []int) uint64 {
	h := uint64(14695981039346656037)
	for _, i := range idx {
		h = h*31 + r[i].Hash()
	}
	return h
}
