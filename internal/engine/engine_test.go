package engine

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
)

// fixture builds a 4-segment cluster with one hash table, one replicated
// table and one partitioned table, with hand-written rows.
type fixture struct {
	c    *Cluster
	f    *md.ColumnFactory
	rels map[string]*md.Relation
	cols map[string][]*md.ColRef
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	p := md.NewMemProvider()
	fx := &fixture{
		f:    md.NewColumnFactory(),
		rels: map[string]*md.Relation{},
		cols: map[string][]*md.ColRef{},
	}
	mk := func(spec md.TableSpec, rows []Row) {
		rel := md.Build(p, spec)
		fx.rels[spec.Name] = rel
		if fx.c == nil {
			fx.c = NewCluster(4, p)
		}
		if err := fx.c.CreateTable(rel, rows); err != nil {
			t.Fatal(err)
		}
	}
	i := func(v int64) base.Datum { return base.NewInt(v) }

	mk(md.TableSpec{
		Name: "t", Rows: 8, Policy: md.DistHash, DistCols: []int{0},
		Cols: []md.ColSpec{
			{Name: "k", Type: base.TInt, NDV: 8, Lo: 0, Hi: 8},
			{Name: "g", Type: base.TInt, NDV: 2, Lo: 0, Hi: 2},
			{Name: "v", Type: base.TInt, NDV: 8, Lo: 0, Hi: 80},
		},
	}, []Row{
		{i(0), i(0), i(10)}, {i(1), i(1), i(20)}, {i(2), i(0), i(30)}, {i(3), i(1), i(40)},
		{i(4), i(0), i(50)}, {i(5), i(1), i(60)}, {i(6), i(0), i(70)}, {i(7), i(1), base.Null},
	})
	mk(md.TableSpec{
		Name: "dim", Rows: 3, Policy: md.DistReplicated,
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 3, Lo: 0, Hi: 3},
			{Name: "name", Type: base.TString, NDV: 3, Lo: 0, Hi: 3},
		},
	}, []Row{
		{i(0), base.NewString("zero")}, {i(1), base.NewString("one")}, {i(2), base.NewString("two")},
	})
	mk(md.TableSpec{
		Name: "pt", Rows: 6, Policy: md.DistHash, DistCols: []int{0},
		PartCol: 1,
		Parts: []md.Partition{
			{Name: "lo", Lo: i(0), Hi: i(10)},
			{Name: "hi", Lo: i(10), Hi: i(21)},
		},
		Cols: []md.ColSpec{
			{Name: "id", Type: base.TInt, NDV: 6, Lo: 0, Hi: 6},
			{Name: "d", Type: base.TInt, NDV: 6, Lo: 0, Hi: 21},
		},
	}, []Row{
		{i(0), i(1)}, {i(1), i(5)}, {i(2), i(9)}, {i(3), i(12)}, {i(4), i(18)}, {i(5), i(20)},
	})
	return fx
}

// scan builds a Scan node over a fixture table, registering fresh colrefs.
func (fx *fixture) scan(name string, filter ops.ScalarExpr) (*ops.Expr, []*md.ColRef) {
	rel := fx.rels[name]
	cols := make([]*md.ColRef, len(rel.Columns))
	for i, c := range rel.Columns {
		cols[i] = fx.f.NewTableColumn(c.Name, c.Type, rel.Mdid, i)
	}
	return ops.NewExpr(&ops.Scan{Alias: name, Rel: rel, Cols: cols, Filter: filter}), cols
}

func run(t testing.TB, fx *fixture, plan *ops.Expr) *Result {
	t.Helper()
	res, err := fx.c.Execute(plan, Options{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

func rowsAsStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestScanAndGather(t *testing.T) {
	fx := newFixture(t)
	scan, _ := fx.scan("t", nil)
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, scan))
	if len(res.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(res.Rows))
	}
	if res.Stats.NetTuples == 0 {
		t.Error("gather moved no tuples")
	}
}

func TestScanFilterPushdown(t *testing.T) {
	fx := newFixture(t)
	rel := fx.rels["t"]
	cols := []*md.ColRef{
		fx.f.NewTableColumn("k", base.TInt, rel.Mdid, 0),
		fx.f.NewTableColumn("g", base.TInt, rel.Mdid, 1),
		fx.f.NewTableColumn("v", base.TInt, rel.Mdid, 2),
	}
	scan := ops.NewExpr(&ops.Scan{Rel: rel, Cols: cols, Filter: ops.NewCmp(ops.CmpGt,
		ops.NewIdent(cols[0].ID, base.TInt), ops.NewConst(base.NewInt(4)))})
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, scan))
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3 (k > 4)", len(res.Rows))
	}
}

func TestReplicatedScanYieldsOneLogicalCopy(t *testing.T) {
	fx := newFixture(t)
	scan, _ := fx.scan("dim", nil)
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, scan))
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3 (no duplicates from replication)", len(res.Rows))
	}
}

func TestPartitionPruning(t *testing.T) {
	fx := newFixture(t)
	rel := fx.rels["pt"]
	cols := []*md.ColRef{
		fx.f.NewTableColumn("id", base.TInt, rel.Mdid, 0),
		fx.f.NewTableColumn("d", base.TInt, rel.Mdid, 1),
	}
	full := ops.NewExpr(&ops.Scan{Rel: rel, Cols: cols})
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, full))
	if len(res.Rows) != 6 {
		t.Fatalf("full scan rows = %d", len(res.Rows))
	}
	fullOps := res.Stats.TupleOps

	pruned := ops.NewExpr(&ops.Scan{Rel: rel, Cols: cols, Pruned: true, Parts: []int{0}})
	res2 := run(t, fx, ops.NewExpr(&ops.Gather{}, pruned))
	if len(res2.Rows) != 3 {
		t.Errorf("pruned scan rows = %d, want 3", len(res2.Rows))
	}
	if res2.Stats.TupleOps >= fullOps {
		t.Errorf("pruned scan did not reduce work: %d vs %d", res2.Stats.TupleOps, fullOps)
	}
}

func TestHashJoinTypes(t *testing.T) {
	fx := newFixture(t)
	// Outer: t (8 rows, g in {0,1}); inner: dim (ids 0,1,2). Join t.g = dim.id.
	tScan, tCols := fx.scan("t", nil)
	dScan, dCols := fx.scan("dim", nil)
	mk := func(jt ops.JoinType) *ops.Expr {
		j := &ops.HashJoin{Type: jt,
			LeftKeys:  []base.ColID{tCols[1].ID},
			RightKeys: []base.ColID{dCols[0].ID}}
		return ops.NewExpr(&ops.Gather{}, ops.NewExpr(j, tScan, dScan))
	}
	if res := run(t, fx, mk(ops.InnerJoin)); len(res.Rows) != 8 {
		t.Errorf("inner join rows = %d, want 8", len(res.Rows))
	}
	if res := run(t, fx, mk(ops.SemiJoin)); len(res.Rows) != 8 {
		t.Errorf("semi join rows = %d, want 8", len(res.Rows))
	}
	if res := run(t, fx, mk(ops.AntiJoin)); len(res.Rows) != 0 {
		t.Errorf("anti join rows = %d, want 0", len(res.Rows))
	}

	// Join on t.k = dim.id: only k in {0,1,2} match.
	mkK := func(jt ops.JoinType) *ops.Expr {
		j := &ops.HashJoin{Type: jt,
			LeftKeys:  []base.ColID{tCols[0].ID},
			RightKeys: []base.ColID{dCols[0].ID}}
		return ops.NewExpr(&ops.Gather{}, ops.NewExpr(j, tScan, dScan))
	}
	if res := run(t, fx, mkK(ops.InnerJoin)); len(res.Rows) != 3 {
		t.Errorf("selective inner join rows = %d, want 3", len(res.Rows))
	}
	res := run(t, fx, mkK(ops.LeftJoin))
	if len(res.Rows) != 8 {
		t.Errorf("left join rows = %d, want 8", len(res.Rows))
	}
	nulls := 0
	for _, r := range res.Rows {
		if r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 5 {
		t.Errorf("left join null-extended rows = %d, want 5", nulls)
	}
	if res := run(t, fx, mkK(ops.AntiJoin)); len(res.Rows) != 5 {
		t.Errorf("anti join rows = %d, want 5", len(res.Rows))
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	fx := newFixture(t)
	// t.v has one NULL; self-join t.v = t.v must not match NULL with NULL.
	s1, c1 := fx.scan("t", nil)
	s2, c2 := fx.scan("t", nil)
	j := &ops.HashJoin{Type: ops.InnerJoin,
		LeftKeys:  []base.ColID{c1[2].ID},
		RightKeys: []base.ColID{c2[2].ID}}
	// Co-locate both sides on the join key first.
	l := ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{c1[2].ID}}, s1)
	r := ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{c2[2].ID}}, s2)
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, ops.NewExpr(j, l, r)))
	if len(res.Rows) != 7 {
		t.Errorf("self join rows = %d, want 7 (NULL keys never match)", len(res.Rows))
	}
}

func TestNLJoinNonEqui(t *testing.T) {
	fx := newFixture(t)
	tScan, tCols := fx.scan("t", nil)
	dScan, dCols := fx.scan("dim", nil)
	pred := ops.NewCmp(ops.CmpLt, ops.NewIdent(tCols[1].ID, base.TInt), ops.NewIdent(dCols[0].ID, base.TInt))
	j := ops.NewExpr(&ops.NLJoin{Type: ops.InnerJoin, Pred: pred},
		tScan, ops.NewExpr(&ops.Broadcast{}, dScan))
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, j))
	// g=0 rows (4) match ids {1,2} → 8; g=1 rows (4) match {2} → 4.
	if len(res.Rows) != 12 {
		t.Errorf("non-equi NL join rows = %d, want 12", len(res.Rows))
	}
}

func TestRedistributeThenGatherPreservesMultiset(t *testing.T) {
	fx := newFixture(t)
	f := func(col uint8) bool {
		scanA, cols := fx.scan("t", nil)
		plain := run(t, fx, ops.NewExpr(&ops.Gather{}, scanA))
		scanB, colsB := fx.scan("t", nil)
		red := ops.NewExpr(&ops.Redistribute{Cols: []base.ColID{colsB[int(col)%3].ID}}, scanB)
		moved := run(t, fx, ops.NewExpr(&ops.Gather{}, red))
		_ = cols
		a, b := rowsAsStrings(plain), rowsAsStrings(moved)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastReplicates(t *testing.T) {
	fx := newFixture(t)
	scan, _ := fx.scan("t", nil)
	b := ops.NewExpr(&ops.Broadcast{}, scan)
	res := run(t, fx, ops.NewExpr(&ops.Gather{}, b))
	// Gather of a replicated result reads one logical copy.
	if len(res.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(res.Rows))
	}
	if res.Stats.NetTuples < 8*4 {
		t.Errorf("broadcast moved %d tuples, want >= 32 (8 rows × 4 segments)", res.Stats.NetTuples)
	}
}
