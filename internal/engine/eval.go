package engine

import (
	"fmt"
	"strings"

	"orca/internal/base"
	"orca/internal/ops"
)

// schema maps column ids to row positions.
type schema map[base.ColID]int

func schemaOf(cols []base.ColID) schema {
	s := make(schema, len(cols))
	for i, c := range cols {
		s[c] = i
	}
	return s
}

// evalCtx evaluates scalar expressions over a row. bindings supplies values
// for correlation parameters (columns not in the local schema) during
// SubPlan re-execution.
type evalCtx struct {
	sch      schema
	bindings map[base.ColID]base.Datum
}

func (e *evalCtx) col(id base.ColID, row Row) (base.Datum, error) {
	if i, ok := e.sch[id]; ok {
		return row[i], nil
	}
	if e.bindings != nil {
		if v, ok := e.bindings[id]; ok {
			return v, nil
		}
	}
	return base.Null, fmt.Errorf("engine: unbound column c%d", id)
}

// eval computes a scalar expression over the row.
func (e *evalCtx) eval(x ops.ScalarExpr, row Row) (base.Datum, error) {
	switch v := x.(type) {
	case *ops.Ident:
		return e.col(v.Col, row)
	case *ops.Const:
		return v.Val, nil
	case *ops.Param:
		// Plan-cache rebinding replaces every Param with a Const before a
		// plan leaves the cache; one reaching execution is a cache bug.
		return base.Null, fmt.Errorf("engine: unbound plan-cache parameter $%d", v.Ord)
	case *ops.Cmp:
		l, err := e.eval(v.L, row)
		if err != nil {
			return base.Null, err
		}
		r, err := e.eval(v.R, row)
		if err != nil {
			return base.Null, err
		}
		if l.IsNull() || r.IsNull() {
			return base.Null, nil
		}
		c := l.Compare(r)
		var ok bool
		switch v.Op {
		case ops.CmpEq:
			ok = c == 0
		case ops.CmpNe:
			ok = c != 0
		case ops.CmpLt:
			ok = c < 0
		case ops.CmpLe:
			ok = c <= 0
		case ops.CmpGt:
			ok = c > 0
		case ops.CmpGe:
			ok = c >= 0
		}
		return base.NewBool(ok), nil
	case *ops.BoolOp:
		return e.evalBool(v, row)
	case *ops.BinOp:
		return e.evalBin(v, row)
	case *ops.Func:
		return e.evalFunc(v, row)
	case *ops.Case:
		for _, w := range v.Whens {
			cond, err := e.eval(w.When, row)
			if err != nil {
				return base.Null, err
			}
			if cond.Bool() {
				return e.eval(w.Then, row)
			}
		}
		if v.Else != nil {
			return e.eval(v.Else, row)
		}
		return base.Null, nil
	case *ops.IsNull:
		val, err := e.eval(v.Arg, row)
		if err != nil {
			return base.Null, err
		}
		return base.NewBool(val.IsNull() != v.Negated), nil
	case *ops.InList:
		val, err := e.eval(v.Arg, row)
		if err != nil {
			return base.Null, err
		}
		if val.IsNull() {
			return base.Null, nil
		}
		found := false
		for _, item := range v.Vals {
			iv, err := e.eval(item, row)
			if err != nil {
				return base.Null, err
			}
			if !iv.IsNull() && val.Compare(iv) == 0 {
				found = true
				break
			}
		}
		return base.NewBool(found != v.Negated), nil
	default:
		return base.Null, fmt.Errorf("engine: cannot evaluate %T at runtime", x)
	}
}

// truthy evaluates a predicate; SQL three-valued NULL collapses to false.
func (e *evalCtx) truthy(x ops.ScalarExpr, row Row) (bool, error) {
	if x == nil {
		return true, nil
	}
	v, err := e.eval(x, row)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

func (e *evalCtx) evalBool(v *ops.BoolOp, row Row) (base.Datum, error) {
	switch v.Kind {
	case ops.BoolNot:
		a, err := e.eval(v.Args[0], row)
		if err != nil {
			return base.Null, err
		}
		if a.IsNull() {
			return base.Null, nil
		}
		return base.NewBool(!a.Bool()), nil
	case ops.BoolAnd:
		anyNull := false
		for _, a := range v.Args {
			av, err := e.eval(a, row)
			if err != nil {
				return base.Null, err
			}
			if av.IsNull() {
				anyNull = true
				continue
			}
			if !av.Bool() {
				return base.NewBool(false), nil
			}
		}
		if anyNull {
			return base.Null, nil
		}
		return base.NewBool(true), nil
	default: // OR
		anyNull := false
		for _, a := range v.Args {
			av, err := e.eval(a, row)
			if err != nil {
				return base.Null, err
			}
			if av.IsNull() {
				anyNull = true
				continue
			}
			if av.Bool() {
				return base.NewBool(true), nil
			}
		}
		if anyNull {
			return base.Null, nil
		}
		return base.NewBool(false), nil
	}
}

func (e *evalCtx) evalBin(v *ops.BinOp, row Row) (base.Datum, error) {
	l, err := e.eval(v.L, row)
	if err != nil {
		return base.Null, err
	}
	r, err := e.eval(v.R, row)
	if err != nil {
		return base.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return base.Null, nil
	}
	// Integer arithmetic stays integral except division.
	if l.Kind == base.DInt && r.Kind == base.DInt && v.Op != "/" {
		switch v.Op {
		case "+":
			return base.NewInt(l.I + r.I), nil
		case "-":
			return base.NewInt(l.I - r.I), nil
		case "*":
			return base.NewInt(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return base.Null, nil
			}
			return base.NewInt(l.I % r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch v.Op {
	case "+":
		return base.NewFloat(lf + rf), nil
	case "-":
		return base.NewFloat(lf - rf), nil
	case "*":
		return base.NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return base.Null, nil
		}
		return base.NewFloat(lf / rf), nil
	case "%":
		if rf == 0 {
			return base.Null, nil
		}
		return base.NewFloat(float64(int64(lf) % int64(rf))), nil
	default:
		return base.Null, fmt.Errorf("engine: unknown operator %q", v.Op)
	}
}

func (e *evalCtx) evalFunc(v *ops.Func, row Row) (base.Datum, error) {
	args := make([]base.Datum, len(v.Args))
	for i, a := range v.Args {
		av, err := e.eval(a, row)
		if err != nil {
			return base.Null, err
		}
		args[i] = av
	}
	switch v.Name {
	case "like":
		if args[0].IsNull() || args[1].IsNull() {
			return base.Null, nil
		}
		return base.NewBool(likeMatch(args[0].S, args[1].S)), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return base.Null, nil
	case "abs":
		if args[0].IsNull() {
			return base.Null, nil
		}
		if args[0].Kind == base.DInt {
			if args[0].I < 0 {
				return base.NewInt(-args[0].I), nil
			}
			return args[0], nil
		}
		f := args[0].AsFloat()
		if f < 0 {
			f = -f
		}
		return base.NewFloat(f), nil
	case "substr":
		if args[0].IsNull() {
			return base.Null, nil
		}
		s := args[0].S
		start := int(args[1].I) - 1
		n := len(s)
		if len(args) > 2 {
			n = int(args[2].I)
		}
		if start < 0 {
			start = 0
		}
		if start >= len(s) {
			return base.NewString(""), nil
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return base.NewString(s[start:end]), nil
	default:
		return base.Null, fmt.Errorf("engine: unknown function %q", v.Name)
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	// Fast paths for the common shapes.
	switch {
	case !strings.ContainsAny(pattern, "%_"):
		return s == pattern
	case strings.Count(pattern, "%") == 2 && strings.HasPrefix(pattern, "%") &&
		strings.HasSuffix(pattern, "%") && !strings.Contains(pattern[1:len(pattern)-1], "%") &&
		!strings.Contains(pattern, "_"):
		return strings.Contains(s, pattern[1:len(pattern)-1])
	}
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}
