package engine

import (
	"fmt"
	"math"

	"orca/internal/base"
	"orca/internal/md"
	"orca/internal/ops"
	"orca/internal/props"
)

// Options configure one execution.
type Options struct {
	// Budget caps total work units (tuple operations plus weighted network
	// tuples); 0 means unlimited. Exceeding it returns ErrBudget — the
	// deterministic analogue of the paper's 10000 s query timeout.
	Budget int64
	// NetWeight is the work-unit cost of moving one tuple (default 3).
	NetWeight int64
	// StagePenalty multiplies per-operator work to simulate engines that
	// materialize between stages (the Stinger/MapReduce execution style);
	// 0 or 1 means none.
	StagePenalty float64
	// MemLimitRows caps per-segment hash-table sizes for engines that
	// cannot spill (the Impala simulation); 0 means unlimited.
	MemLimitRows int
	// PipelineMemRows caps the cumulative per-segment intermediate result
	// volume for engines that keep whole pipelines in memory without any
	// spill path (the Presto 0.52 simulation, §7.3.2); 0 means unlimited.
	PipelineMemRows int
}

// ExecStats reports deterministic work counters.
type ExecStats struct {
	TupleOps   int64
	NetTuples  int64
	MaxHashMem int
}

// Work combines the counters into a single work-unit figure comparable
// across plans and engines.
func (s ExecStats) Work(netWeight int64) int64 {
	return s.TupleOps + netWeight*s.NetTuples
}

// Result is the output of one query execution.
type Result struct {
	Schema []base.ColID
	Rows   []Row
	Stats  ExecStats
	// TimedOut reports that the execution budget was exhausted.
	TimedOut bool
}

// result is the executor's intermediate value: one row slice per segment.
type result struct {
	schema []base.ColID
	parts  [][]Row
	rep    bool // every segment holds the same full copy
}

func (r *result) sch() schema { return schemaOf(r.schema) }

// oneCopy returns the partitions collapsed to a single logical copy.
func (r *result) oneCopy() [][]Row {
	if !r.rep {
		return r.parts
	}
	out := make([][]Row, len(r.parts))
	out[0] = r.parts[0]
	return out
}

// totalRows counts rows in one logical copy.
func (r *result) totalRows() int {
	n := 0
	for _, p := range r.oneCopy() {
		n += len(p)
	}
	return n
}

type executor struct {
	c        *Cluster
	opts     Options
	stats    ExecStats
	penalty  float64
	cte      map[int]*result
	bindings map[base.ColID]base.Datum
	pipeRows int64
}

// Execute runs a physical plan against the cluster and returns the gathered
// result rows.
func (c *Cluster) Execute(plan *ops.Expr, opts Options) (*Result, error) {
	if opts.NetWeight == 0 {
		opts.NetWeight = 3
	}
	pen := opts.StagePenalty
	if pen < 1 {
		pen = 1
	}
	ex := &executor{c: c, opts: opts, penalty: pen, cte: make(map[int]*result)}
	res, err := ex.exec(plan)
	out := &Result{Stats: ex.stats}
	if err == ErrBudget {
		out.TimedOut = true
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	out.Schema = res.schema
	for _, p := range res.oneCopy() {
		out.Rows = append(out.Rows, p...)
	}
	return out, nil
}

// charge accounts local work and enforces the budget.
func (ex *executor) charge(n int) error {
	ex.stats.TupleOps += int64(float64(n) * ex.penalty)
	return ex.check()
}

func (ex *executor) chargeNet(n int) error {
	ex.stats.NetTuples += int64(n)
	return ex.check()
}

func (ex *executor) check() error {
	if ex.opts.Budget > 0 && ex.stats.Work(ex.opts.NetWeight) > ex.opts.Budget {
		return ErrBudget
	}
	return nil
}

func (ex *executor) exec(e *ops.Expr) (*result, error) {
	res, err := ex.execOp(e)
	if err != nil {
		return nil, err
	}
	if ex.opts.PipelineMemRows > 0 {
		ex.pipeRows += int64(res.totalRows())
		if ex.pipeRows/int64(ex.c.Segments) > int64(ex.opts.PipelineMemRows) {
			return nil, ErrOOM
		}
	}
	return res, nil
}

// The execOp dispatch switch is generated into dispatch.gen.go from the
// physical operator definitions in defs/; the exec<Op> methods in this
// package are the hand-written executors it calls, each taking the typed
// operator plus the plan node carrying its children.

// execSpool materializes its input (charged as one pass over the rows).
func (ex *executor) execSpool(_ *ops.Spool, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	if err := ex.charge(in.totalRows()); err != nil {
		return nil, err
	}
	return in, nil
}

// execSequence runs the producer side for effect, then returns the second
// child's result.
func (ex *executor) execSequence(_ *ops.Sequence, e *ops.Expr) (*result, error) {
	if _, err := ex.exec(e.Children[0]); err != nil {
		return nil, err
	}
	return ex.exec(e.Children[1])
}

// ---------------------------------------------------------------------------
// Scans

func (ex *executor) execScan(op *ops.Scan, _ *ops.Expr) (*result, error) {
	t, ok := ex.c.tables[op.Rel.Name]
	if !ok {
		return nil, fmt.Errorf("engine: table %q not loaded", op.Rel.Name)
	}
	out := &result{schema: colIDs(op.Cols), parts: make([][]Row, ex.c.Segments)}
	out.rep = op.Rel.Policy == md.DistReplicated
	ectx := &evalCtx{sch: out.sch(), bindings: ex.bindings}

	partIdx := allParts(t)
	if op.Pruned {
		partIdx = op.Parts
	}
	for _, p := range partIdx {
		for s := 0; s < ex.c.Segments; s++ {
			rows := t.parts[p][s]
			if err := ex.charge(len(rows)); err != nil {
				return nil, err
			}
			for _, r := range rows {
				pr := projectRow(r, op.Cols)
				keep, err := ectx.truthy(op.Filter, pr)
				if err != nil {
					return nil, err
				}
				if keep {
					out.parts[s] = append(out.parts[s], pr)
				}
			}
		}
	}
	return out, nil
}

func (ex *executor) execIndexScan(op *ops.IndexScan, _ *ops.Expr) (*result, error) {
	t, ok := ex.c.tables[op.Rel.Name]
	if !ok {
		return nil, fmt.Errorf("engine: table %q not loaded", op.Rel.Name)
	}
	out := &result{schema: colIDs(op.Cols), parts: make([][]Row, ex.c.Segments)}
	ectx := &evalCtx{sch: out.sch(), bindings: ex.bindings}
	// Index access is simulated: only matching tuples are charged, plus a
	// logarithmic descent per segment.
	for p := range t.parts {
		for s := 0; s < ex.c.Segments; s++ {
			rows := t.parts[p][s]
			if err := ex.charge(int(math.Log2(float64(len(rows) + 2)))); err != nil {
				return nil, err
			}
			for _, r := range rows {
				pr := projectRow(r, op.Cols)
				keep, err := ectx.truthy(op.EqFilter, pr)
				if err != nil {
					return nil, err
				}
				if !keep {
					continue
				}
				if err := ex.charge(1); err != nil {
					return nil, err
				}
				keep, err = ectx.truthy(op.Residual, pr)
				if err != nil {
					return nil, err
				}
				if keep {
					out.parts[s] = append(out.parts[s], pr)
				}
			}
		}
	}
	// Index scans deliver key order within each segment.
	ord := indexOrder(op)
	sortParts(out, ord)
	return out, nil
}

func indexOrder(op *ops.IndexScan) props.OrderSpec {
	items := make([]props.OrderItem, len(op.Index.KeyCols))
	for i, ord := range op.Index.KeyCols {
		items[i] = props.OrderItem{Col: op.Cols[ord].ID}
	}
	return props.OrderSpec{Items: items}
}

func allParts(t *Table) []int {
	out := make([]int, len(t.parts))
	for i := range out {
		out[i] = i
	}
	return out
}

// projectRow maps a stored row onto the scan's column references.
func projectRow(r Row, cols []*md.ColRef) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c.Ordinal]
	}
	return out
}

func colIDs(cols []*md.ColRef) []base.ColID {
	out := make([]base.ColID, len(cols))
	for i, c := range cols {
		out[i] = c.ID
	}
	return out
}
