package engine

import (
	"fmt"
	"sort"
	"strings"

	"orca/internal/base"
	"orca/internal/ops"
	"orca/internal/props"
)

// ---------------------------------------------------------------------------
// Filter / ComputeScalar

func (ex *executor) execFilter(op *ops.Filter, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts)), rep: in.rep}
	ectx := &evalCtx{sch: in.sch(), bindings: ex.bindings}
	for s, rows := range in.parts {
		if err := ex.charge(len(rows)); err != nil {
			return nil, err
		}
		for _, r := range rows {
			keep, err := ectx.truthy(op.Pred, r)
			if err != nil {
				return nil, err
			}
			if keep {
				out.parts[s] = append(out.parts[s], r)
			}
		}
	}
	return out, nil
}

func (ex *executor) execComputeScalar(op *ops.ComputeScalar, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	sch := make([]base.ColID, len(op.Elems))
	for i, e := range op.Elems {
		sch[i] = e.Col.ID
	}
	out := &result{schema: sch, parts: make([][]Row, len(in.parts)), rep: in.rep}
	ectx := &evalCtx{sch: in.sch(), bindings: ex.bindings}
	for s, rows := range in.parts {
		if err := ex.charge(len(rows)); err != nil {
			return nil, err
		}
		for _, r := range rows {
			nr := make(Row, len(op.Elems))
			for i, e := range op.Elems {
				v, err := ectx.eval(e.Expr, r)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			out.parts[s] = append(out.parts[s], nr)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Joins

func keyString(r Row, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(r[i].String())
		b.WriteByte('|')
	}
	return b.String()
}

func colPositions(sch schema, cols []base.ColID) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		p, ok := sch[c]
		if !ok {
			return nil, fmt.Errorf("engine: column c%d not in input schema", c)
		}
		out[i] = p
	}
	return out, nil
}

func (ex *executor) execHashJoin(op *ops.HashJoin, e *ops.Expr) (*result, error) {
	outer, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	inner, err := ex.exec(e.Children[1])
	if err != nil {
		return nil, err
	}
	// A replicated side joins against the other side's local partitions; if
	// both are replicated the output is replicated.
	rep := outer.rep && inner.rep
	outSchema := append(append([]base.ColID(nil), outer.schema...), inner.schema...)
	if op.Type == ops.SemiJoin || op.Type == ops.AntiJoin {
		outSchema = outer.schema
	}
	out := &result{schema: outSchema, parts: make([][]Row, len(outer.parts)), rep: rep}

	oPos, err := colPositions(outer.sch(), op.LeftKeys)
	if err != nil {
		return nil, err
	}
	iPos, err := colPositions(inner.sch(), op.RightKeys)
	if err != nil {
		return nil, err
	}
	residualCtx := &evalCtx{sch: schemaOf(append(append([]base.ColID(nil), outer.schema...), inner.schema...)), bindings: ex.bindings}

	segs := len(outer.parts)
	for s := 0; s < segs; s++ {
		if rep && s > 0 {
			break
		}
		oRows := outer.parts[s]
		iRows := inner.parts[s]
		if outer.rep && !inner.rep {
			oRows = outer.parts[s] // full copy joins local inner partition
		}
		// Build on the inner side.
		if err := ex.charge(len(iRows)); err != nil {
			return nil, err
		}
		if ex.opts.MemLimitRows > 0 && len(iRows) > ex.opts.MemLimitRows {
			return nil, ErrOOM
		}
		if len(iRows) > ex.stats.MaxHashMem {
			ex.stats.MaxHashMem = len(iRows)
		}
		ht := make(map[string][]Row, len(iRows))
		for _, ir := range iRows {
			k := keyString(ir, iPos)
			ht[k] = append(ht[k], ir)
		}
		// Probe with the outer side.
		if err := ex.charge(len(oRows)); err != nil {
			return nil, err
		}
		for _, or := range oRows {
			k := keyString(or, oPos)
			matches := ht[k]
			matched := false
			for _, ir := range matches {
				if hasNullKey(or, oPos) {
					break // SQL equality never matches NULL keys
				}
				joined := append(append(Row{}, or...), ir...)
				ok, err := residualCtx.truthy(op.Residual, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				if err := ex.charge(1); err != nil {
					return nil, err
				}
				switch op.Type {
				case ops.InnerJoin, ops.LeftJoin:
					out.parts[s] = append(out.parts[s], joined)
				case ops.SemiJoin:
					out.parts[s] = append(out.parts[s], or)
				case ops.AntiJoin:
					// Matched outer rows are excluded; see the unmatched
					// handling below.
				}
				if op.Type == ops.SemiJoin {
					break
				}
			}
			switch op.Type {
			case ops.LeftJoin:
				if !matched {
					out.parts[s] = append(out.parts[s], padRight(or, len(inner.schema)))
				}
			case ops.AntiJoin:
				if !matched {
					out.parts[s] = append(out.parts[s], or)
				}
			case ops.InnerJoin, ops.SemiJoin:
				// Emit-on-match only; nothing to do for unmatched rows.
			}
		}
	}
	fillReplicated(out)
	return out, nil
}

// fillReplicated copies segment 0's rows to every segment of a replicated
// result so per-segment consumers observe the full copy everywhere.
func fillReplicated(r *result) {
	if !r.rep {
		return
	}
	for s := 1; s < len(r.parts); s++ {
		r.parts[s] = r.parts[0]
	}
}

func hasNullKey(r Row, pos []int) bool {
	for _, p := range pos {
		if r[p].IsNull() {
			return true
		}
	}
	return false
}

func padRight(r Row, n int) Row {
	out := append(append(Row{}, r...), make(Row, n)...)
	for i := len(r); i < len(out); i++ {
		out[i] = base.Null
	}
	return out
}

func (ex *executor) execNLJoin(op *ops.NLJoin, e *ops.Expr) (*result, error) {
	outer, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	inner, err := ex.exec(e.Children[1])
	if err != nil {
		return nil, err
	}
	rep := outer.rep && inner.rep
	outSchema := append(append([]base.ColID(nil), outer.schema...), inner.schema...)
	if op.Type == ops.SemiJoin || op.Type == ops.AntiJoin {
		outSchema = outer.schema
	}
	out := &result{schema: outSchema, parts: make([][]Row, len(outer.parts)), rep: rep}
	ectx := &evalCtx{sch: schemaOf(append(append([]base.ColID(nil), outer.schema...), inner.schema...)), bindings: ex.bindings}

	for s := range outer.parts {
		if rep && s > 0 {
			break
		}
		oRows := outer.parts[s]
		iRows := inner.parts[s]
		if inner.rep {
			iRows = inner.parts[s] // full local copy
		}
		if err := ex.charge(len(oRows) * maxi(len(iRows), 1)); err != nil {
			return nil, err
		}
		for _, or := range oRows {
			matched := false
			for _, ir := range iRows {
				joined := append(append(Row{}, or...), ir...)
				ok, err := ectx.truthy(op.Pred, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				switch op.Type {
				case ops.InnerJoin, ops.LeftJoin:
					out.parts[s] = append(out.parts[s], joined)
				case ops.SemiJoin:
					out.parts[s] = append(out.parts[s], or)
				case ops.AntiJoin:
					// Matched outer rows are excluded; see the unmatched
					// handling below.
				}
				if op.Type == ops.SemiJoin {
					break
				}
			}
			switch op.Type {
			case ops.LeftJoin:
				if !matched {
					out.parts[s] = append(out.parts[s], padRight(or, len(inner.schema)))
				}
			case ops.AntiJoin:
				if !matched {
					out.parts[s] = append(out.parts[s], or)
				}
			case ops.InnerJoin, ops.SemiJoin:
				// Emit-on-match only; nothing to do for unmatched rows.
			}
		}
	}
	fillReplicated(out)
	return out, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Motions (the interconnect)

// execGather and execGatherMerge share gatherRows; the merge variant keeps
// the segment streams' order.
func (ex *executor) execGather(_ *ops.Gather, e *ops.Expr) (*result, error) {
	return ex.gatherRows(e.Children[0], props.OrderSpec{})
}

func (ex *executor) execGatherMerge(op *ops.GatherMerge, e *ops.Expr) (*result, error) {
	return ex.gatherRows(e.Children[0], op.Order)
}

func (ex *executor) gatherRows(child *ops.Expr, order props.OrderSpec) (*result, error) {
	in, err := ex.exec(child)
	if err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts))}
	moved := 0
	for s, rows := range in.oneCopy() {
		if s != 0 {
			moved += len(rows)
		}
		out.parts[0] = append(out.parts[0], rows...)
	}
	if err := ex.chargeNet(moved); err != nil {
		return nil, err
	}
	if !order.IsAny() {
		// Merge-preserving gather: segment streams are already ordered;
		// merging is simulated with a stable sort over the concatenation.
		sortRows(out.parts[0], in.sch(), order)
		if err := ex.charge(len(out.parts[0])); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ex *executor) execRedistribute(op *ops.Redistribute, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	pos, err := colPositions(in.sch(), op.Cols)
	if err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts))}
	moved := 0
	for from, rows := range in.oneCopy() {
		for _, r := range rows {
			to := int(hashCols(r, pos) % uint64(len(out.parts)))
			if to != from {
				moved++
			}
			out.parts[to] = append(out.parts[to], r)
		}
	}
	if err := ex.chargeNet(moved); err != nil {
		return nil, err
	}
	return out, nil
}

func (ex *executor) execBroadcast(_ *ops.Broadcast, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	var all []Row
	for _, rows := range in.oneCopy() {
		all = append(all, rows...)
	}
	if err := ex.chargeNet(len(all) * len(in.parts)); err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts)), rep: true}
	for s := range out.parts {
		out.parts[s] = all
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sort / Limit / Union

func sortRows(rows []Row, sch schema, order props.OrderSpec) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, it := range order.Items {
			p := sch[it.Col]
			c := rows[i][p].Compare(rows[j][p])
			if c != 0 {
				if it.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
}

func sortParts(r *result, order props.OrderSpec) {
	sch := r.sch()
	for _, rows := range r.parts {
		sortRows(rows, sch, order)
	}
}

func (ex *executor) execSort(op *ops.Sort, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts)), rep: in.rep}
	for s, rows := range in.parts {
		cp := append([]Row(nil), rows...)
		sortRows(cp, in.sch(), op.Order)
		out.parts[s] = cp
		if err := ex.charge(len(rows) * log2i(len(rows))); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func log2i(n int) int {
	l := 1
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func (ex *executor) execPhysicalLimit(op *ops.PhysicalLimit, e *ops.Expr) (*result, error) {
	in, err := ex.exec(e.Children[0])
	if err != nil {
		return nil, err
	}
	var all []Row
	for _, rows := range in.oneCopy() {
		all = append(all, rows...)
	}
	if !op.Order.IsAny() {
		sortRows(all, in.sch(), op.Order)
	}
	start := int(op.Offset)
	if start > len(all) {
		start = len(all)
	}
	end := len(all)
	if op.HasCount && start+int(op.Count) < end {
		end = start + int(op.Count)
	}
	out := &result{schema: in.schema, parts: make([][]Row, len(in.parts))}
	out.parts[0] = all[start:end]
	if err := ex.charge(end - start); err != nil {
		return nil, err
	}
	return out, nil
}

func (ex *executor) execPhysicalUnionAll(op *ops.PhysicalUnionAll, e *ops.Expr) (*result, error) {
	sch := make([]base.ColID, len(op.OutCols))
	for i, c := range op.OutCols {
		sch[i] = c.ID
	}
	out := &result{schema: sch, parts: make([][]Row, ex.c.Segments)}
	for ci, childE := range e.Children {
		in, err := ex.exec(childE)
		if err != nil {
			return nil, err
		}
		pos, err := colPositions(in.sch(), op.InCols[ci])
		if err != nil {
			return nil, err
		}
		for s, rows := range in.oneCopy() {
			if err := ex.charge(len(rows)); err != nil {
				return nil, err
			}
			for _, r := range rows {
				nr := make(Row, len(pos))
				for i, p := range pos {
					nr[i] = r[p]
				}
				out.parts[s] = append(out.parts[s], nr)
			}
		}
	}
	return out, nil
}
