module orca

go 1.22
